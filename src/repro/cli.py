"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``freq`` — the core question: max clock of a stack under a cooling
  option (optionally with the flip schedule).
* ``sweep`` — a Figs. 1/7/8/17-style table for one chip.
* ``npb`` — a Figs. 10-13-style relative-execution-time table.
* ``maps`` — ASCII thermal maps (Figs. 9/16/18).
* ``pue`` — the Section 4.4 facility comparison.
* ``headline`` — the abstract's numbers, end to end.
* ``campaign`` — resilient checkpointed sweep campaign (retry,
  graceful degradation, failure ledger, resume).
* ``chaos`` — a campaign under randomized *process* faults (worker
  kill / hang / slow heartbeat): proves the supervised pool recovers,
  quarantines poison points, and leaves a verifiable checkpoint.
* ``serve`` — HTTP request-serving endpoint (coalescing, result
  cache, admission control; see ``docs/serving.md``).
* ``submit`` — submit a JSON spec to a running ``repro serve``; with
  ``--trace-out`` it also turns on server-side tracing and merges the
  broker/worker spans into one cross-process Chrome trace.
* ``top`` — live serving telemetry: polls ``GET /stats`` and renders
  the rolling-window SLO summary (p50/p99 per stage, event rates).

Ctrl-C anywhere exits 130 after a clean wrap-up (campaigns keep their
checkpoint; ``serve`` drains in-flight requests) instead of dumping a
traceback.

Every subcommand accepts the global observability flags (before *or*
after the subcommand name):

* ``--trace-out PATH`` — write a span trace; ``.jsonl`` gets one span
  per line, anything else gets Chrome ``trace_event`` JSON loadable in
  ``about:tracing`` / https://ui.perfetto.dev;
* ``--metrics-out PATH`` — write the metrics-registry snapshot as JSON;
* ``-v`` / ``-vv`` — structured JSON logging on stderr (``-vv`` also
  streams every finished span).

Both output files are flushed exactly once no matter how the process
leaves: the normal return path, Ctrl-C (130), and plain interpreter
exit all funnel through one idempotent ``atexit``-registered flusher,
so an interrupted campaign still leaves its trace and metrics behind.
"""

from __future__ import annotations

import argparse
import atexit
import sys

from .analysis import format_mapping, format_table


def _cmd_freq(args: argparse.Namespace) -> int:
    from . import quick_max_frequency
    p = quick_max_frequency(args.chip, args.chips, args.cooling,
                            flip=args.flip)
    if not p.feasible:
        print(f"infeasible: even the lowest VFS step reaches "
              f"{p.max_temp_c:.1f} C")
        return 1
    print(f"{args.chip} x{args.chips} under {args.cooling}"
          f"{' (flip)' if args.flip else ''}: "
          f"{p.f_ghz:.1f} GHz, hottest cell {p.max_temp_c:.1f} C, "
          f"stack power {p.total_power_w:.0f} W")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core.sweeps import frequency_vs_chips
    if args.response_cache_dir:
        from .thermal.response import configure as configure_response
        configure_response(args.response_cache_dir)
    chips = tuple(range(1, args.max_chips + 1))
    cools = tuple(args.cooling) if args.cooling else (
        "air", "water_pipe", "mineral_oil", "fluorinert", "water")
    series = frequency_vs_chips(args.chip, chips, cools,
                                workers=args.workers)
    rows = []
    for i, n in enumerate(chips):
        rows.append([n] + [s.f_ghz[i] if s.f_ghz[i] > 0 else None
                           for s in series])
    print(format_table(["chips"] + [s.cooling for s in series], rows,
                       float_fmt="{:.1f}"))
    return 0


def _cmd_npb(args: argparse.Namespace) -> int:
    from .core.cosim import run_npb_comparison
    from .perfsim.npb import NPB_ORDER
    cmp_ = run_npb_comparison(args.chip, args.chips,
                              reference=args.reference)
    cools = [o.cooling for o in cmp_.outcomes if o.feasible]
    rows = []
    rel = {c: cmp_.relative_times(c) for c in cools}
    for name in NPB_ORDER:
        rows.append([name.upper()] + [rel[c][name] for c in cools])
    rows.append(["average"] + [cmp_.average_relative(c) for c in cools])
    print(format_table(["benchmark"] + cools, rows))
    return 0


def _cmd_maps(args: argparse.Namespace) -> int:
    from .core.sweeps import thermal_maps
    from .thermal.maps import MapStats, ascii_map
    from .units import ghz
    maps = thermal_maps(args.chip, args.cooling, ghz(args.ghz),
                        n_chips=args.chips, flipped=args.flip)
    for name, field in maps.items():
        s = MapStats.from_field(name, field)
        print(f"-- {name}: {s.min_c:.1f}..{s.max_c:.1f} C")
        print(ascii_map(field))
    return 0


def _cmd_pue(args: argparse.Namespace) -> int:
    from .cooling import pue_comparison
    print(format_mapping("PUE by facility style", pue_comparison()))
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from .core.cosim import headline_summary
    print(format_mapping("headline (best average NPB reduction)",
                         headline_summary()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import render_full_report
    print(render_full_report())
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from .core.pareto import evaluate_designs, pareto_frontier
    points = evaluate_designs(args.chip,
                              tuple(range(1, args.max_chips + 1, 2)))
    frontier = pareto_frontier(points)
    rows = [[p.cooling, p.n_chips, p.f_ghz, p.throughput,
             p.wall_power_w] for p in frontier]
    print(format_table(["cooling", "chips", "GHz", "throughput",
                        "wall W"], rows, float_fmt="{:.2f}"))
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    import json

    from .config import ExperimentSpec
    from .errors import ConfigurationError
    try:
        spec = ExperimentSpec.from_dict(json.loads(args.json))
    except json.JSONDecodeError as exc:
        print(f"error: spec is not valid JSON: {exc}", file=sys.stderr)
        return 2
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    res = spec.run()
    if not res.feasible:
        print(f"infeasible (coolest achievable maximum "
              f"{res.max_temp_c:.1f} C)")
        return 1
    print(f"{spec.chip} x{spec.n_chips} under {spec.cooling}"
          f"{' (flip)' if spec.flip else ''}: {res.f_ghz:.1f} GHz, "
          f"{res.max_temp_c:.1f} C, {res.total_power_w:.0f} W")
    if res.npb_time_s:
        print(format_table(
            ["benchmark", "time (ms)"],
            [[k.upper(), v * 1e3] for k, v in res.npb_time_s.items()]))
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .analysis.uncertainty import robustness_study
    r = robustness_study(n_draws=args.draws, seed=args.seed)
    print(format_mapping(
        f"conclusion survival over the calibration band "
        f"({r.draws} draws)",
        {
            "coolant ordering": r.ordering_rate,
            "water deepest": r.water_deepest_rate,
            "water-pipe 8-chip cliff": r.pipe_cliff_rate,
            "water >= oil at 8 chips": r.water_beats_oil_npb_rate,
        }))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import warnings

    from .core.campaign import CampaignRunner, frequency_grid, npb_grid
    from .errors import DegradedResultWarning
    from .resilience import FaultInjector, FaultSpec, ResilienceOptions, \
        RetryPolicy

    chips = tuple(range(1, args.max_chips + 1))
    cools = tuple(args.cooling) if args.cooling else (
        "air", "water_pipe", "mineral_oil", "fluorinert", "water")
    if args.kind == "npb":
        points = npb_grid(args.chip, chips, cools)
    else:
        points = frequency_grid(args.chip, chips, cools)

    injector = None
    if args.inject:
        injector = FaultInjector(
            [FaultSpec.parse(s) for s in args.inject], seed=args.seed)
    options = ResilienceOptions(
        retry_policy=RetryPolicy(max_attempts=args.max_retries + 1,
                                 seed=args.seed),
        allow_degraded=args.allow_degraded,
        injector=injector,
    )
    runner = CampaignRunner(points, resilience=options,
                            checkpoint_path=args.checkpoint,
                            point_timeout_s=args.timeout,
                            workers=args.workers,
                            chunk_size=args.chunk_size,
                            response_cache_dir=args.response_cache_dir)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        result = runner.run(resume=args.resume)

    rows = []
    for point in points:
        r = result.records[point.key]
        rows.append([point.key, r.status,
                     r.f_ghz if r.status == "ok" else None,
                     r.rung or "-", "yes" if r.degraded else "no",
                     r.attempts])
    print(format_table(
        ["point", "status", "GHz", "rung", "degraded", "attempts"],
        rows, float_fmt="{:.1f}"))
    s = result.summary()
    print(f"evaluated {s['evaluated']}, skipped {s['skipped']} "
          f"(checkpointed), ok {s['ok']}, infeasible {s['infeasible']}, "
          f"degraded {s['degraded']}, failed {s['failed']}")
    if result.ledger:
        print("failure ledger:")
        for e in result.ledger:
            print(f"  {e.key}: {e.exception}: {e.message} "
                  f"(attempts {e.attempts}, rungs "
                  f"{'/'.join(e.rungs_tried)})")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
        print(f"manifest: {runner.manifest_path()}")
    finished = s["ok"] + s["infeasible"]
    return 0 if finished > 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a campaign under randomized process faults and prove recovery.

    The supervised pool is expected to (a) finish every point a fault
    did not permanently poison, (b) quarantine the rest into the
    ledger, and (c) leave a checkpoint that passes integrity
    verification. Exit 0 means the campaign finished points despite
    the chaos; 1 means it produced nothing.
    """
    import json as _json
    import warnings

    from .core.campaign import (CampaignRunner, frequency_grid,
                                verify_checkpoint)
    from .errors import CheckpointError, DegradedResultWarning
    from .obs import get_registry
    from .resilience import (PROCESS_FAULT_KINDS, FaultInjector,
                             FaultSpec, ProcessFaultPlan,
                             ResilienceOptions, RetryPolicy)

    chips = tuple(range(1, args.max_chips + 1))
    cools = tuple(args.cooling) if args.cooling else ("water",)
    points = frequency_grid(args.chip, chips, cools)

    specs = [FaultSpec.parse(s)
             for s in (args.inject or ["worker_kill:0.5:1"])]
    proc_specs = tuple(s for s in specs
                       if s.kind in PROCESS_FAULT_KINDS)
    model_specs = tuple(s for s in specs
                        if s.kind not in PROCESS_FAULT_KINDS)
    plan = (ProcessFaultPlan(specs=proc_specs, seed=args.seed)
            if proc_specs else None)
    injector = (FaultInjector(model_specs, seed=args.seed)
                if model_specs else None)
    options = ResilienceOptions(
        retry_policy=RetryPolicy(max_attempts=args.max_retries + 1,
                                 seed=args.seed),
        allow_degraded=args.allow_degraded,
        injector=injector,
    )
    print(f"repro chaos: {len(points)} points, workers {args.workers}, "
          f"faults {' '.join(f'{s.kind}:{s.probability}:{s.max_fires}' for s in specs)}, "
          f"seed {args.seed}", flush=True)
    runner = CampaignRunner(points, resilience=options,
                            checkpoint_path=args.checkpoint,
                            workers=args.workers,
                            chunk_size=args.chunk_size,
                            process_faults=plan,
                            chunk_timeout_s=args.chunk_timeout,
                            heartbeat_timeout_s=args.heartbeat_timeout,
                            max_point_crashes=args.poison_threshold,
                            response_cache_dir=args.response_cache_dir)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        result = runner.run(resume=args.resume)

    s = result.summary()
    quarantined = s.get("poison", 0)
    counters = get_registry().snapshot()["counters"]
    print(format_table(
        ["point", "status", "rung", "attempts"],
        [[p.key, result.records[p.key].status,
          result.records[p.key].rung or "-",
          result.records[p.key].attempts] for p in points]))
    print(f"evaluated {s['evaluated']}, skipped {s['skipped']}, "
          f"ok {s['ok']}, infeasible {s['infeasible']}, "
          f"failed {s['failed']}, quarantined {quarantined}")
    print("supervision: "
          f"restarts {counters.get('supervisor.restarts', 0)}, "
          f"worker crashes {counters.get('supervisor.worker_crashes', 0)}, "
          f"heartbeat misses {counters.get('supervisor.heartbeat_misses', 0)}, "
          f"task retries {counters.get('supervisor.task_retries', 0)}, "
          f"checkpoint recoveries {counters.get('checkpoint.recoveries', 0)}")
    if result.ledger:
        print("failure ledger:")
        for e in result.ledger:
            print(f"  {e.key}: {e.exception}: {e.message}")
    if args.ledger_out:
        with open(args.ledger_out, "w") as fh:
            _json.dump([e.to_dict() for e in result.ledger], fh,
                       indent=1)
        print(f"ledger: {args.ledger_out}")
    if args.checkpoint:
        try:
            info = verify_checkpoint(args.checkpoint)
        except CheckpointError as exc:
            print(f"checkpoint INTEGRITY FAILURE: {exc}",
                  file=sys.stderr)
            return 1
        print(f"checkpoint: {args.checkpoint} (integrity ok, "
              f"{info['points']} points, "
              f"{info['ledger_entries']} ledger entries)")
        print(f"manifest: {runner.manifest_path()}")
    finished = s["ok"] + s["infeasible"]
    return 0 if finished > 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .resilience import ResilienceOptions, RetryPolicy
    from .serve import Broker, BrokerConfig, ServeHTTPServer

    if args.response_cache_dir:
        from .thermal.response import configure as configure_response
        configure_response(args.response_cache_dir)
    config = BrokerConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        cache_capacity=args.cache_capacity,
        cache_ttl_s=args.cache_ttl,
        use_processes=args.processes,
        default_deadline_s=args.default_deadline,
        slo_window_s=args.slo_window,
    )
    options = ResilienceOptions(
        retry_policy=RetryPolicy(max_attempts=args.max_retries + 1,
                                 seed=args.seed),
        allow_degraded=args.allow_degraded,
    )
    broker = Broker(config, resilience=options)
    httpd = ServeHTTPServer(broker, args.host, args.port)
    print(f"repro serve: listening on {httpd.url} "
          f"(workers {config.workers}, queue bound {config.max_queue}, "
          f"cache {config.cache_capacity}"
          f"{f' ttl {config.cache_ttl_s:g}s' if config.cache_ttl_s else ''}; "
          f"Prometheus scrape at {httpd.url}/metrics, "
          f"`repro top --url {httpd.url}` for live SLOs)",
          flush=True)
    rc = 0
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("\ninterrupted — draining in-flight requests",
              file=sys.stderr)
        rc = 130
    finally:
        httpd.server_close()
        stats = broker.shutdown(drain=True,
                                manifest_path=args.manifest,
                                timeout=args.drain_timeout)
        print(f"drained: {stats['completed_total']} completed, "
              f"{stats['coalesced_total']} coalesced, "
              f"{stats['cache']['hits']} cache hits, "
              f"{stats['shed_total']} shed, "
              f"{stats['failed_total']} failed", flush=True)
        if args.manifest:
            print(f"manifest: {args.manifest}")
    return rc


def _adopt_server_trace(client) -> None:
    """Merge the server's spans into the local tracer (best-effort).

    ``repro submit --trace-out`` wants ONE Chrome trace showing the
    whole request path — client, broker process, and every pool worker
    pid. The broker already repatriates worker spans; this pulls its
    ``GET /trace`` document and adopts those spans locally, so the
    normal CLI flush writes the merged picture. Network trouble here
    never fails the submit: the result mattered, the trace is gravy.
    """
    from .obs import get_tracer, spans_from_chrome
    try:
        spans = spans_from_chrome(client.trace())
    except Exception:
        return
    if spans:
        get_tracer().adopt_spans(spans)


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve.http import HttpServeClient

    client = HttpServeClient(args.url, timeout_s=args.timeout + 10)
    if args.shutdown:
        if not client.healthz():
            print(f"error: no server at {args.url}", file=sys.stderr)
            return 1
        client.shutdown()
        print(f"shutdown requested at {args.url}")
        return 0
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        try:
            client.set_tracing(True)
        except Exception:
            pass        # unreachable server is reported by submit below
    try:
        return _submit_and_report(args, client)
    finally:
        if trace_out is not None:
            _adopt_server_trace(client)


def _submit_and_report(args: argparse.Namespace, client) -> int:
    import json

    from .errors import OverloadedError, ServeError

    if args.json is None:
        print("error: provide a spec JSON (or --shutdown)",
              file=sys.stderr)
        return 2
    try:
        spec = json.loads(args.json)
    except json.JSONDecodeError as exc:
        print(f"error: spec is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        sub = client.submit(spec, priority=args.priority,
                            deadline_s=args.deadline)
    except OverloadedError as exc:
        d = exc.to_dict()
        print(f"overloaded: server shed the request "
              f"(queued {d['queued']}, in flight {d['in_flight']}, "
              f"limit {d['limit']}) — back off and retry",
              file=sys.stderr)
        return 75  # EX_TEMPFAIL
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job {sub['job_id']} "
          f"({'coalesced' if sub['attached'] > 1 else sub['state']}"
          f"{', cached' if sub.get('from_cache') else ''}), "
          f"config hash {sub['config_hash'][:12]}")
    if not args.wait:
        return 0
    doc = client.result(sub["job_id"], timeout_s=args.timeout)
    if doc.get("http_status") != 200:
        print(f"error: job {sub['job_id']} -> "
              f"{doc.get('state', 'unknown')}: "
              f"{doc.get('message', doc.get('error', 'pending'))}",
              file=sys.stderr)
        return 1
    r = doc["result"]
    if r.get("scenario", {}).get("kind") == "fleet":
        sc, jobs, th = r["scenario"], r["jobs"], r["thermal"]
        print(f"fleet {sc['policy']} seed {sc['seed']}: "
              f"{jobs['completed']}/{jobs['arrived']} jobs, "
              f"{r['throughput_gcps']:.2f} Gcycles/s, "
              f"PUE {r['energy']['pue']:.4f}, "
              f"water max {th['max_water_temp_c']:.2f} C"
              f"{' [degraded: ' + doc['rung'] + ']' if doc['degraded'] else ''}")
        return 0
    if not r["feasible"]:
        print(f"infeasible (coolest achievable maximum "
              f"{r['max_temp_c']:.1f} C)")
        return 1
    s = r["spec"]
    print(f"{s['chip']} x{s['n_chips']} under {s['cooling']}"
          f"{' (flip)' if s.get('flip') else ''}: "
          f"{r['f_ghz']:.1f} GHz, {r['max_temp_c']:.1f} C, "
          f"{r['total_power_w']:.0f} W"
          f"{' [degraded: ' + doc['rung'] + ']' if doc['degraded'] else ''}")
    if r["npb_time_s"]:
        print(format_table(
            ["benchmark", "time (ms)"],
            [[k.upper(), v * 1e3] for k, v in r["npb_time_s"].items()]))
    return 0


def _render_top_frame(url: str, stats: dict) -> None:
    """One `repro top` frame: lifetime counters + the windowed SLOs."""
    slo = stats.get("slo", {})
    print(f"repro top — {url}  "
          f"(uptime {stats.get('uptime_s', 0.0):.0f}s, "
          f"window {slo.get('window_s', 0):g}s)")
    print(f"queued {stats['queued']}  in-flight {stats['in_flight']}  "
          f"requests {stats['requests_total']}  "
          f"completed {stats['completed_total']}  "
          f"coalesced {stats['coalesced_total']}  "
          f"shed {stats['shed_total']}  failed {stats['failed_total']}")
    cache = stats.get("cache", {})
    print(f"cache: hits {cache.get('hits', 0)}  "
          f"misses {cache.get('misses', 0)}  "
          f"size {cache.get('size', 0)}/{cache.get('capacity', 0)}  "
          f"evictions {cache.get('evictions', 0)}")
    stages = slo.get("stages", {})
    if stages:
        print(format_table(
            ["stage", "n", "p50 ms", "p99 ms", "max ms", "mean ms"],
            [[name, agg["count"], agg["p50"] * 1e3, agg["p99"] * 1e3,
              agg["max"] * 1e3, agg["mean"] * 1e3]
             for name, agg in sorted(stages.items())],
            float_fmt="{:.1f}"))
    events = slo.get("events", {})
    rates = [f"{name} {agg['per_s']:.2f}/s"
             for name, agg in sorted(events.items()) if agg["count"]]
    if rates:
        print("window rates: " + "  ".join(rates))


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time
    import urllib.error

    from .serve.http import HttpServeClient

    client = HttpServeClient(args.url, timeout_s=5.0)
    iterations = 1 if args.once else args.iterations
    frames = 0
    try:
        while True:
            try:
                stats = client.stats()
            except (urllib.error.URLError, OSError) as exc:
                print(f"error: no server at {args.url} ({exc})",
                      file=sys.stderr)
                return 1
            if frames and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")   # clear + home, like top(1)
            elif frames:
                print()
            _render_top_frame(args.url, stats)
            frames += 1
            if iterations is not None and frames >= iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        # leaving the dashboard is the normal way out, like watch(1)
        print()
        return 0


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """The global observability flags (added to root and subparsers, so
    they parse in either position).

    SUPPRESS keeps an absent flag from ever touching the namespace:
    the subparser parses into a fresh namespace and copies every set
    key over the root's, so a plain ``default=None`` here would clobber
    a value parsed before the subcommand name.
    """
    p.add_argument("--trace-out", default=argparse.SUPPRESS,
                   metavar="PATH",
                   help="write a span trace (.jsonl = JSON lines, "
                        "otherwise Chrome trace_event JSON for "
                        "about:tracing / Perfetto)")
    p.add_argument("--metrics-out", default=argparse.SUPPRESS,
                   metavar="PATH",
                   help="write the metrics-registry snapshot as JSON")
    p.add_argument("-v", "--verbose", action="count",
                   default=argparse.SUPPRESS,
                   help="structured JSON logging on stderr "
                        "(-vv also streams finished spans)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Water-immersion computer boards (ICPP 2019), "
                    "reproduced.",
    )
    _add_obs_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_chip(p, default="high-frequency-cmp"):
        p.add_argument("--chip", default=default,
                       choices=("low-power-cmp", "high-frequency-cmp",
                                "xeon-e5-2667v4", "xeon-phi-7290"))

    def add_response_cache(p):
        p.add_argument("--response-cache-dir", default=None,
                       metavar="DIR",
                       help="directory of the content-addressed thermal "
                            "response-operator store; processes and "
                            "runs pointed at the same directory warm "
                            "each other (built once per geometry, then "
                            "mmap-loaded)")

    p = sub.add_parser("freq", help="max clock of one configuration")
    add_chip(p)
    p.add_argument("--chips", type=int, default=4)
    p.add_argument("--cooling", default="water")
    p.add_argument("--flip", action="store_true")
    p.set_defaults(func=_cmd_freq)

    p = sub.add_parser("sweep", help="frequency-vs-chips table")
    add_chip(p, default="low-power-cmp")
    p.add_argument("--max-chips", type=int, default=15)
    p.add_argument("--cooling", nargs="*", default=None)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="evaluate sweep points over N worker processes "
                        "(default: in-process serial; results are "
                        "identical either way)")
    add_response_cache(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("npb", help="NPB relative execution times")
    add_chip(p, default="low-power-cmp")
    p.add_argument("--chips", type=int, default=6)
    p.add_argument("--reference", default="water_pipe")
    p.set_defaults(func=_cmd_npb)

    p = sub.add_parser("maps", help="ASCII thermal maps")
    add_chip(p)
    p.add_argument("--chips", type=int, default=4)
    p.add_argument("--cooling", default="water")
    p.add_argument("--ghz", type=float, default=3.6)
    p.add_argument("--flip", action="store_true")
    p.set_defaults(func=_cmd_maps)

    p = sub.add_parser("pue", help="facility PUE comparison")
    p.set_defaults(func=_cmd_pue)

    p = sub.add_parser("headline", help="abstract numbers end to end")
    p.set_defaults(func=_cmd_headline)

    p = sub.add_parser("report", help="full paper-vs-measured report")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("pareto", help="throughput/wall-power frontier")
    add_chip(p)
    p.add_argument("--max-chips", type=int, default=11)
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("spec", help="run a JSON ExperimentSpec")
    p.add_argument("json", help="spec as a JSON object, e.g. "
                                '\'{"chip": "low-power-cmp", '
                                '"n_chips": 6, "cooling": "water"}\'')
    p.set_defaults(func=_cmd_spec)

    p = sub.add_parser(
        "campaign",
        help="resilient checkpointed sweep campaign with retry, "
             "graceful degradation, and a failure ledger")
    add_chip(p, default="low-power-cmp")
    p.add_argument("--kind", choices=("freq", "npb"), default="freq",
                   help="grid family: max-frequency points or NPB "
                        "co-simulation points")
    p.add_argument("--max-chips", type=int, default=8)
    p.add_argument("--cooling", nargs="*", default=None)
    p.add_argument("--checkpoint", default="campaign.json",
                   help="JSON checkpoint path (rewritten after every "
                        "point)")
    p.add_argument("--resume", action="store_true",
                   help="skip points already finished in the checkpoint; "
                        "re-attempt failed ones")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries per point after the first attempt "
                        "(transient errors only)")
    p.add_argument("--allow-degraded", action="store_true",
                   help="permit analytic-model fallback when the "
                        "sparse-LU tier fails (results tagged degraded)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point wall-clock budget in seconds")
    p.add_argument("--inject", nargs="*", default=None,
                   metavar="KIND[:PROB[:MAX]]",
                   help="fault injection for testing, e.g. "
                        "'singular:0.5' 'timeout:0.3:2'")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for fault injection and retry jitter")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="run the campaign on the parallel engine with "
                        "N worker processes (N=1 runs the engine "
                        "inline); records, checkpoints, and ledgers "
                        "are identical at every worker count")
    p.add_argument("--chunk-size", type=int, default=None, metavar="K",
                   help="points per scheduled chunk; the checkpoint is "
                        "rewritten after each chunk (default: auto)")
    add_response_cache(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "chaos",
        help="run a campaign under randomized process faults (worker "
             "kill/hang) and verify the supervised pool recovers")
    add_chip(p, default="low-power-cmp")
    p.add_argument("--max-chips", type=int, default=4)
    p.add_argument("--cooling", nargs="*", default=None,
                   help="cooling options (default: water)")
    p.add_argument("--checkpoint", default="chaos_campaign.json",
                   help="JSON checkpoint path (integrity-verified "
                        "after the run)")
    p.add_argument("--resume", action="store_true",
                   help="skip points already finished in the checkpoint")
    p.add_argument("--inject", nargs="*", default=None,
                   metavar="KIND[:PROB[:MAX]]",
                   help="fault specs; process kinds (worker_kill, "
                        "worker_hang, slow_heartbeat) run in the pool "
                        "workers, model kinds in the evaluation ladder "
                        "(default: 'worker_kill:0.5:1')")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-schedule seed (same seed + grid = same "
                        "faults at any worker count)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="supervised worker processes")
    p.add_argument("--chunk-size", type=int, default=1, metavar="K",
                   help="points per chunk (1 = finest quarantine "
                        "granularity)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="model-level retries per point")
    p.add_argument("--allow-degraded", action="store_true",
                   help="permit analytic-model fallback")
    p.add_argument("--chunk-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="per-chunk wall-clock budget before the worker "
                        "is killed (recovers hung workers)")
    p.add_argument("--heartbeat-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="worker silence budget before restart")
    p.add_argument("--poison-threshold", type=int, default=2,
                   metavar="N",
                   help="worker crashes per chunk before its points "
                        "are quarantined as poison")
    p.add_argument("--ledger-out", default=None, metavar="PATH",
                   help="also write the failure ledger as JSON (CI "
                        "artifact)")
    add_response_cache(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="HTTP request-serving endpoint with coalescing, result "
             "cache, and admission control")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="dispatcher count; also the in-flight bound")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission bound: requests queued past this "
                        "are shed with a structured 429")
    p.add_argument("--cache-capacity", type=int, default=256,
                   help="result-cache entries (LRU past this)")
    p.add_argument("--cache-ttl", type=float, default=None,
                   metavar="SECONDS",
                   help="result-cache time-to-live (default: no expiry)")
    p.add_argument("--processes", action="store_true",
                   help="evaluate on a persistent process pool instead "
                        "of dispatcher threads (CPU parallelism)")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="queue-wait deadline applied to requests that "
                        "do not set one")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries per request for transient errors")
    p.add_argument("--allow-degraded", action="store_true",
                   help="permit analytic-model fallback when the "
                        "full-fidelity pipeline fails (provenance on "
                        "the response)")
    p.add_argument("--seed", type=int, default=0,
                   help="retry-jitter seed")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="write a run manifest with serve/cache stats "
                        "on shutdown")
    p.add_argument("--drain-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="max seconds to finish outstanding work on "
                        "shutdown (then queued jobs are cancelled)")
    p.add_argument("--slo-window", type=float, default=60.0,
                   metavar="SECONDS",
                   help="rolling window for the /stats SLO summary and "
                        "serve.slo.* gauges (p50/p99, event rates)")
    add_response_cache(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a JSON ExperimentSpec to a running repro serve")
    p.add_argument("json", nargs="?", default=None,
                   help="spec as a JSON object (same shape as "
                        "`repro spec`)")
    p.add_argument("--url", default="http://127.0.0.1:8023",
                   help="server base URL")
    p.add_argument("--priority", type=int, default=0,
                   help="scheduling class; lower runs first")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="max queue wait before the server expires the "
                        "request")
    p.add_argument("--wait", action="store_true",
                   help="block for and print the result")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="result wait budget with --wait")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the server to drain and exit instead of "
                        "submitting")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "top",
        help="live serving telemetry: poll GET /stats and render the "
             "rolling-window SLO summary")
    p.add_argument("--url", default="http://127.0.0.1:8023",
                   help="server base URL")
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="seconds between polls")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="stop after N frames (default: until Ctrl-C)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (scripts, CI)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("robustness",
                       help="conclusion survival over the calibration "
                            "band")
    p.add_argument("--draws", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_robustness)

    # `repro fleet run` / `repro fleet sweep` live in their own module
    # (repro.fleet.cli); it registers obs flags on its leaves itself.
    from .fleet.cli import register as register_fleet
    register_fleet(sub, add_obs_flags=_add_obs_flags,
                   add_response_cache=add_response_cache)

    # Accept the observability flags after the subcommand too
    # (`repro campaign --trace-out t.json ...`). Values parsed by the
    # subparser win; argparse keeps root-parsed values otherwise.
    for p in sub.choices.values():
        _add_obs_flags(p)

    return parser


class _TelemetryFlusher:
    """Idempotent ``--trace-out`` / ``--metrics-out`` writer.

    ``main`` registers one instance with :mod:`atexit` AND calls it
    from its ``finally`` block. Whichever fires first wins; the other
    is a no-op. That covers every exit the interpreter can make — the
    normal return, Ctrl-C/SIGINT (KeyboardInterrupt unwinds through
    the ``finally``), and ``sys.exit`` from anywhere deeper — without
    ever writing the files twice.
    """

    def __init__(self, trace_out: str | None,
                 metrics_out: str | None) -> None:
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self._done = False

    def __call__(self) -> None:
        if self._done:
            return
        self._done = True
        if self.trace_out is not None:
            from .obs import get_tracer
            tracer = get_tracer()
            if str(self.trace_out).endswith(".jsonl"):
                tracer.write_jsonl(self.trace_out)
            else:
                tracer.write_chrome_trace(self.trace_out)
        if self.metrics_out is not None:
            from .obs import get_registry
            get_registry().write_json(self.metrics_out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit code."""
    args = build_parser().parse_args(argv)

    from .obs import get_tracer, log_event, set_verbosity
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    verbose = getattr(args, "verbose", 0) or 0

    flusher = _TelemetryFlusher(trace_out, metrics_out)
    if trace_out is not None or metrics_out is not None:
        atexit.register(flusher)

    tracer = get_tracer()
    was_enabled = tracer.enabled
    prior_on_close = tracer.on_close
    if verbose:
        set_verbosity(verbose)
        if verbose >= 2:
            tracer.on_close = lambda sp: log_event(
                "span", level=2, name=sp.name,
                duration_ms=round(sp.duration_s * 1e3, 3),
                parent_id=sp.parent_id, **sp.attrs)
    if trace_out is not None or verbose >= 2:
        tracer.enable()
    from .errors import PoolClosedError
    try:
        with tracer.span(f"cli.{args.command}"):
            rc = args.func(args)
    except PoolClosedError as exc:
        # EX_TEMPFAIL: the pool/service is restartable and the request
        # was not wrong — rerun (campaigns resume from their
        # checkpoint) or let the serve broker rebuild its pool.
        print(f"error: {exc}", file=sys.stderr)
        rc = 75
    except KeyboardInterrupt:
        # A Ctrl-C mid-run must not dump a traceback: campaigns have
        # already checkpointed every finished point and `serve` drains
        # inside its own handler, so exit with the conventional
        # 128+SIGINT code and keep the observability flush below.
        print("\ninterrupted (Ctrl-C)", file=sys.stderr)
        if args.command == "campaign":
            checkpoint = getattr(args, "checkpoint", None)
            if checkpoint:
                print(f"finished points are checkpointed in "
                      f"{checkpoint}; rerun with --resume to continue",
                      file=sys.stderr)
        rc = 130
    finally:
        flusher()
        atexit.unregister(flusher)
        if verbose:
            set_verbosity(0)
        tracer.on_close = prior_on_close
        if not was_enabled:
            tracer.disable()
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
