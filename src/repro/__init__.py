"""repro — water-immersion computer boards, reproduced in Python.

Reproduction of Koibuchi, Fujiwara, Niwa, Totoki, Hirasawa: *The Case
for Water-Immersion Computer Boards*, ICPP 2019.

The package provides the paper's full evaluation pipeline:

* :mod:`repro.power` — McPAT-like chip power model with alpha-power VFS;
* :mod:`repro.thermal` — HotSpot-like steady-state 3-D thermal model;
* :mod:`repro.floorplan` — die floorplans and rotations;
* :mod:`repro.cooling` — air / water-pipe / immersion cooling options;
* :mod:`repro.stack` — 3-D chip stacks;
* :mod:`repro.perfsim` — gem5-like CMP performance simulation of the
  NAS Parallel Benchmarks;
* :mod:`repro.core` — thermal-constrained frequency optimization and
  the power->thermal->performance co-simulation;
* :mod:`repro.prototype` — in-water prototype board models (Section 2);
* :mod:`repro.datasets` — the paper's published numbers, digitized.

Quickstart::

    from repro import quick_max_frequency
    point = quick_max_frequency("high-frequency-cmp", n_chips=4,
                                cooling="water")
    print(point.f_ghz, point.max_temp_c)
"""

from __future__ import annotations

__version__ = "1.0.0"

from .config import ExperimentResult, ExperimentSpec
from .cooling import get_cooling
from .core import OperatingPoint, max_frequency
from .power import get_chip
from .stack import StackConfig, flip_even_layers, uniform_stack
from .thermal import ThermalModel, model_for


def quick_max_frequency(chip: str, n_chips: int, cooling: str,
                        *, flip: bool = False,
                        threshold_c: float | None = None) -> OperatingPoint:
    """One-call version of the paper's core question.

    Args:
        chip: chip name ("low-power-cmp", "high-frequency-cmp",
            "xeon-e5-2667v4", "xeon-phi-7290").
        n_chips: stack height.
        cooling: cooling option name ("air", "water_pipe", "mineral_oil",
            "fluorinert", "water").
        flip: apply the Section 4.2 rotation schedule.
        threshold_c: temperature limit override.

    Returns:
        The maximum-frequency operating point.
    """
    rotations = (tuple(i % 2 == 1 for i in range(n_chips)) if flip else ())
    model = model_for(chip, n_chips, cooling, rotations)
    return max_frequency(model, threshold_c)


__all__ = [
    "__version__",
    "quick_max_frequency",
    "ExperimentSpec",
    "ExperimentResult",
    "OperatingPoint",
    "max_frequency",
    "ThermalModel",
    "model_for",
    "StackConfig",
    "uniform_stack",
    "flip_even_layers",
    "get_chip",
    "get_cooling",
]
