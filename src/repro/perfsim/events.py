"""Minimal discrete-event engine for the performance simulator.

A classic event-calendar kernel: events are (time, sequence, callback)
triples in a binary heap. The sequence number makes ordering of
simultaneous events deterministic — the whole simulator is reproducible
bit-for-bit given a seed, which the test suite asserts.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError


class EventQueue:
    """Deterministic discrete-event calendar.

    Time is a float in seconds (the CMP simulator schedules in units of
    cycles converted through the clock, so mixed-clock components
    compose naturally).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(self, delay_s: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay_s})"
            )
        heapq.heappush(self._heap, (self._now + delay_s, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time_s: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute time >= now."""
        self.schedule(time_s - self._now, callback)

    def step(self) -> bool:
        """Fire the next event. Returns False when the calendar is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback()
        return True

    def run(self, *, until_s: float | None = None,
            max_events: int = 50_000_000) -> float:
        """Drain the calendar (optionally up to a time horizon).

        Args:
            until_s: stop once the next event lies beyond this time.
            max_events: safety valve against runaway simulations.

        Returns:
            The finishing simulation time.
        """
        fired = 0
        while self._heap:
            if until_s is not None and self._heap[0][0] > until_s:
                self._now = until_s
                break
            if fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) at "
                    f"t={self._now:.6e}s; likely a scheduling loop"
                )
            self.step()
            fired += 1
        return self._now
