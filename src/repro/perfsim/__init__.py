"""CMP performance simulation (the gem5 substitute).

Two tiers share one hardware description (Table 1):

* :class:`FullSystemSimulator` — discrete-event cores + caches +
  MOESI directory traffic on a contended mesh + contended DRAM;
* :class:`AnalyticModel` — the closed-form tier the benches use.
"""

from .analytic import AnalyticBreakdown, AnalyticModel, npb_relative_times
from .cache import (
    DEFAULT_HIERARCHY,
    CacheHierarchyTiming,
    CacheStats,
    SetAssociativeCache,
    SyntheticAddressStream,
)
from .coherence import DirectoryModel, MessageLeg, Transaction, TransactionKind
from .cpu import CoreState, InOrderCore, mix_base_cpi
from .events import EventQueue
from .memory import (
    DEFAULT_DRAM,
    DramParams,
    MemoryController,
    MemorySystem,
    MEMORY_LATENCY_CYCLES_AT_REF,
    MEMORY_REFERENCE_CLOCK_HZ,
)
from .noc import (
    DEFAULT_ROUTER,
    MeshNetwork,
    MeshTopology,
    NetworkStats,
    NodeId,
    RouterParams,
    expected_noc_cycles,
    xy_route,
)
from .npb import NPB_ORDER, NPB_PROFILES, get_profile
from .profiling import MeasuredMpki, measure_mpki, stream_for_profile
from .scaling import ScalingPoint, parallel_efficiency_at_full, thread_scaling
from .simulator import FullSystemSimulator, SimulationResult, simulate_npb
from .trace import ExecutionTrace, TraceEvent, TracingSimulator, traced_run
from .system import CmpSystem, SystemConfig, config_for_stack
from .workload import InstructionMix, WorkloadProfile

__all__ = [
    "AnalyticModel",
    "AnalyticBreakdown",
    "npb_relative_times",
    "SetAssociativeCache",
    "SyntheticAddressStream",
    "CacheHierarchyTiming",
    "CacheStats",
    "DEFAULT_HIERARCHY",
    "DirectoryModel",
    "TransactionKind",
    "Transaction",
    "MessageLeg",
    "InOrderCore",
    "CoreState",
    "mix_base_cpi",
    "EventQueue",
    "DramParams",
    "DEFAULT_DRAM",
    "MemoryController",
    "MemorySystem",
    "MEMORY_REFERENCE_CLOCK_HZ",
    "MEMORY_LATENCY_CYCLES_AT_REF",
    "MeshTopology",
    "NodeId",
    "xy_route",
    "RouterParams",
    "DEFAULT_ROUTER",
    "MeshNetwork",
    "NetworkStats",
    "expected_noc_cycles",
    "NPB_ORDER",
    "NPB_PROFILES",
    "get_profile",
    "MeasuredMpki",
    "measure_mpki",
    "stream_for_profile",
    "ScalingPoint",
    "thread_scaling",
    "parallel_efficiency_at_full",
    "FullSystemSimulator",
    "SimulationResult",
    "simulate_npb",
    "TracingSimulator",
    "ExecutionTrace",
    "TraceEvent",
    "traced_run",
    "CmpSystem",
    "SystemConfig",
    "config_for_stack",
    "InstructionMix",
    "WorkloadProfile",
]
