"""Main-memory model.

Table 1 quotes a 160-cycle memory latency for the baseline CMP. Cycles
must be anchored to a clock to become physical time; we anchor at the
VFS ladder floor (1.2 GHz, the only frequency every configuration in
the paper can run), giving ~133 ns — consistent with the DDR2-era
kernel/toolchain the paper simulates (gem5, Linux 2.6.22). The
distinction matters: on-chip latencies (L1, L2, NoC) are clocked and
shrink as frequency rises, while DRAM is fixed in nanoseconds, so a
higher-clocked chip waits *more cycles* for memory. That fixed-time
behaviour is what differentiates the NPB programs across cooling
options in Figs. 10-13.

Bandwidth contention is modelled per controller as a serially-reusable
resource (like a NoC link): each line fill occupies the controller for
its service time, so heavily missing workloads see queueing on top of
idle latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

MEMORY_REFERENCE_CLOCK_HZ = 1.2e9
"""Clock at which Table 1's 160-cycle figure is anchored (the VFS
ladder floor; see the module docstring)."""

MEMORY_LATENCY_CYCLES_AT_REF = 160
"""Table 1 memory latency in cycles at the reference clock."""


@dataclass(frozen=True)
class DramParams:
    """Main-memory timing constants.

    Attributes:
        idle_latency_s: unloaded access latency (Table 1: 160 cycles at
            2 GHz = 80 ns).
        service_time_s: controller occupancy per 64 B line fill; sets
            the per-controller bandwidth ceiling (64 B / 5 ns = 12.8
            GB/s, a DDR4-1600 channel).
        num_controllers: memory controllers on the bottom tier.
    """

    idle_latency_s: float = MEMORY_LATENCY_CYCLES_AT_REF / MEMORY_REFERENCE_CLOCK_HZ
    service_time_s: float = 5.0e-9
    num_controllers: int = 4

    def __post_init__(self) -> None:
        if self.idle_latency_s <= 0 or self.service_time_s <= 0:
            raise ConfigurationError("DRAM timings must be positive")
        if self.num_controllers < 1:
            raise ConfigurationError("need at least one memory controller")


DEFAULT_DRAM = DramParams()


class MemoryController:
    """One DRAM channel with FCFS occupancy-based queueing."""

    def __init__(self, params: DramParams = DEFAULT_DRAM) -> None:
        self.params = params
        self._free_at = 0.0
        self.requests = 0
        self.total_wait_s = 0.0

    def access(self, now_s: float) -> float:
        """Issue a line fill at ``now_s``; returns its completion time."""
        start = max(now_s, self._free_at)
        self.total_wait_s += start - now_s
        self._free_at = start + self.params.service_time_s
        return start + self.params.idle_latency_s

    @property
    def mean_wait_s(self) -> float:
        """Average queueing delay per request."""
        return self.total_wait_s / self.requests if self.requests else 0.0


class MemorySystem:
    """Address-interleaved collection of controllers."""

    def __init__(self, params: DramParams = DEFAULT_DRAM) -> None:
        self.params = params
        self.controllers = [MemoryController(params)
                            for _ in range(params.num_controllers)]

    def access(self, now_s: float, address: int) -> float:
        """Route a fill to its controller; returns completion time."""
        ctrl = self.controllers[(address >> 6) % len(self.controllers)]
        ctrl.requests += 1
        return ctrl.access(now_s)

    def controller_for(self, address: int) -> int:
        """Controller index serving an address."""
        return (address >> 6) % len(self.controllers)
