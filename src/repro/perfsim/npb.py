"""NAS Parallel Benchmark (OpenMP) workload profiles.

The paper simulates nine NPB 3.3 OpenMP programs under gem5 (GCC 4.4.7,
Linux 2.6.22.9) with 24 or 32 threads. The profiles below encode each
program's published architectural behaviour — instruction mix, cache
miss rates, data sharing, synchronization granularity — drawn from the
standard characterization literature for class A/B inputs on x86 CMPs.

What matters for the paper's experiment is each program's *memory-
boundedness*: DRAM time is fixed in nanoseconds while core/cache/NoC
time scales with the clock, so compute-bound programs (EP) track the
frequency ratio between cooling options while memory-bound ones (CG,
IS, MG) compress it. That structure — not the absolute MPKI — produces
the per-benchmark bar heights in Figs. 10-13.
"""

from __future__ import annotations

from ..errors import SimulationError
from .workload import InstructionMix, WorkloadProfile

BT = WorkloadProfile(
    name="bt",
    mix=InstructionMix(int_alu=0.22, fp_alu=0.38, load=0.26, store=0.10,
                       branch=0.04),
    base_cpi=1.15,
    l1_mpki=20.0,
    l2_mpki=3.0,
    sharing_fraction=0.15,
    barrier_interval_kinstr=40.0,
    imbalance_cv=0.03,
)
"""Block-tridiagonal CFD solver: FP-dense, good locality."""

CG = WorkloadProfile(
    name="cg",
    mix=InstructionMix(int_alu=0.26, fp_alu=0.24, load=0.36, store=0.06,
                       branch=0.08),
    base_cpi=1.25,
    l1_mpki=46.0,
    l2_mpki=20.0,
    sharing_fraction=0.25,
    barrier_interval_kinstr=15.0,
    imbalance_cv=0.05,
)
"""Conjugate gradient: irregular sparse accesses, strongly memory-bound."""

EP = WorkloadProfile(
    name="ep",
    mix=InstructionMix(int_alu=0.28, fp_alu=0.44, load=0.16, store=0.06,
                       branch=0.06),
    base_cpi=1.05,
    l1_mpki=2.0,
    l2_mpki=0.2,
    sharing_fraction=0.02,
    barrier_interval_kinstr=200.0,
    imbalance_cv=0.01,
)
"""Embarrassingly parallel random-number kernel: pure compute."""

FT = WorkloadProfile(
    name="ft",
    mix=InstructionMix(int_alu=0.24, fp_alu=0.34, load=0.27, store=0.10,
                       branch=0.05),
    base_cpi=1.15,
    l1_mpki=30.0,
    l2_mpki=10.0,
    sharing_fraction=0.30,
    barrier_interval_kinstr=25.0,
    imbalance_cv=0.02,
)
"""3-D FFT: strided transposes, all-to-all style sharing."""

IS = WorkloadProfile(
    name="is",
    mix=InstructionMix(int_alu=0.40, fp_alu=0.02, load=0.34, store=0.14,
                       branch=0.10),
    base_cpi=1.30,
    l1_mpki=52.0,
    l2_mpki=24.0,
    sharing_fraction=0.35,
    barrier_interval_kinstr=10.0,
    imbalance_cv=0.06,
)
"""Integer bucket sort: random scatters, the most memory/traffic-bound."""

LU = WorkloadProfile(
    name="lu",
    mix=InstructionMix(int_alu=0.24, fp_alu=0.36, load=0.27, store=0.08,
                       branch=0.05),
    base_cpi=1.20,
    l1_mpki=24.0,
    l2_mpki=4.5,
    sharing_fraction=0.20,
    barrier_interval_kinstr=20.0,
    imbalance_cv=0.04,
)
"""LU factorization with pipelined wavefront sync."""

MG = WorkloadProfile(
    name="mg",
    mix=InstructionMix(int_alu=0.22, fp_alu=0.30, load=0.32, store=0.10,
                       branch=0.06),
    base_cpi=1.20,
    l1_mpki=36.0,
    l2_mpki=15.0,
    sharing_fraction=0.22,
    barrier_interval_kinstr=18.0,
    imbalance_cv=0.03,
)
"""Multigrid: long-stride V-cycle traffic, memory-bound."""

SP = WorkloadProfile(
    name="sp",
    mix=InstructionMix(int_alu=0.23, fp_alu=0.36, load=0.28, store=0.09,
                       branch=0.04),
    base_cpi=1.15,
    l1_mpki=28.0,
    l2_mpki=6.0,
    sharing_fraction=0.18,
    barrier_interval_kinstr=30.0,
    imbalance_cv=0.03,
)
"""Scalar pentadiagonal solver: between BT and MG."""

UA = WorkloadProfile(
    name="ua",
    mix=InstructionMix(int_alu=0.28, fp_alu=0.28, load=0.30, store=0.08,
                       branch=0.06),
    base_cpi=1.30,
    l1_mpki=33.0,
    l2_mpki=11.0,
    sharing_fraction=0.28,
    barrier_interval_kinstr=12.0,
    imbalance_cv=0.07,
)
"""Unstructured adaptive mesh: pointer-chasing irregularity."""


NPB_PROFILES: dict[str, WorkloadProfile] = {
    p.name: p for p in (BT, CG, EP, FT, IS, LU, MG, SP, UA)
}

NPB_ORDER = ("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua")
"""Benchmarks in the order the paper's Figs. 10-13 list them."""


def get_profile(name: str) -> WorkloadProfile:
    """Look up an NPB profile by (lower-case) name."""
    try:
        return NPB_PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(NPB_ORDER)
        raise SimulationError(
            f"unknown NPB program {name!r}; known: {known}"
        ) from None
