"""Cache models: a real set-associative cache and the Table 1 hierarchy.

Two levels of fidelity:

* :class:`SetAssociativeCache` — an address-accurate LRU cache used by
  the address-stream mode and the cache unit tests (hit/miss behaviour,
  inclusion, eviction invariants).
* :class:`CacheHierarchyTiming` — the latency bookkeeping the
  full-system simulator uses: L1 1 cycle, L2 6 cycles, both scaling
  with the core clock (Table 1).

The statistical full-system mode drives misses from per-benchmark MPKI
(see :mod:`repro.perfsim.npb`), which is how the two modes stay
consistent: the address mode *measures* MPKI that the statistical mode
*assumes* (checked in the ablation bench).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import KIB, MIB


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        """Miss count."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A classic set-associative, write-allocate LRU cache.

    Args:
        size_bytes: total capacity.
        line_bytes: cache line size (Table 1: 64 B).
        associativity: ways per set.
        name: label for error messages.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64,
                 associativity: int = 8, name: str = "cache") -> None:
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ConfigurationError(
                f"{name}: size, line, and associativity must be positive"
            )
        if size_bytes % (line_bytes * associativity) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by "
                f"line*assoc = {line_bytes * associativity}"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        # Per set: OrderedDict tag -> True, LRU at the front.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _index_tag(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit. Allocates on miss."""
        if address < 0:
            raise ConfigurationError(f"{self.name}: negative address")
        idx, tag = self._index_tag(address)
        s = self._sets[idx]
        self.stats.accesses += 1
        if tag in s:
            s.move_to_end(tag)
            self.stats.hits += 1
            return True
        if len(s) >= self.associativity:
            s.popitem(last=False)
            self.stats.evictions += 1
        s[tag] = True
        return False

    def contains(self, address: int) -> bool:
        """Lookup without side effects."""
        idx, tag = self._index_tag(address)
        return tag in self._sets[idx]

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns True if it was present."""
        idx, tag = self._index_tag(address)
        return self._sets[idx].pop(tag, None) is not None

    def flush(self) -> None:
        """Empty the cache (stats are kept)."""
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(s) for s in self._sets)


@dataclass(frozen=True)
class CacheHierarchyTiming:
    """Latency constants of the Table 1 hierarchy (in core cycles)."""

    l1_cycles: int = 1
    l2_cycles: int = 6
    l1_size_bytes: int = 128 * KIB
    l1i_size_bytes: int = 32 * KIB
    l2_bank_size_bytes: int = 1 * MIB
    l2_banks: int = 12
    line_bytes: int = 64
    l2_associativity: int = 8

    def __post_init__(self) -> None:
        if self.l1_cycles < 1 or self.l2_cycles < 1:
            raise ConfigurationError("cache latencies must be >= 1 cycle")

    @property
    def l2_total_bytes(self) -> int:
        """Aggregate shared-L2 capacity (Table 1: 12 MiB)."""
        return self.l2_bank_size_bytes * self.l2_banks

    def home_bank(self, address: int) -> int:
        """Static line-interleaved home-bank mapping."""
        return (address // self.line_bytes) % self.l2_banks


DEFAULT_HIERARCHY = CacheHierarchyTiming()
"""Table 1 hierarchy: 32/128 KiB L1 (1 cycle), 12 MiB L2 (6 cycles)."""


class SyntheticAddressStream:
    """Address generator that realizes a target locality profile.

    Mixes three access classes: a hot working set (L1-resident), a warm
    set (L2-resident), and cold/streaming addresses (DRAM). The class
    probabilities are fitted so the measured MPKI of a
    :class:`SetAssociativeCache` pair approximates a workload profile's
    nominal MPKI — the consistency bench does exactly this comparison.

    Args:
        hot_lines / warm_lines: working-set sizes in cache lines.
        p_hot / p_warm: probability of touching each set (remainder
            streams through a cold region).
        line_bytes: address granularity.
        seed: RNG seed.
    """

    def __init__(self, *, hot_lines: int, warm_lines: int, p_hot: float,
                 p_warm: float, line_bytes: int = 64, seed: int = 0) -> None:
        if not (0 <= p_hot <= 1 and 0 <= p_warm <= 1
                and p_hot + p_warm <= 1):
            raise ConfigurationError(
                f"class probabilities invalid: p_hot={p_hot}, "
                f"p_warm={p_warm}"
            )
        if hot_lines <= 0 or warm_lines <= 0:
            raise ConfigurationError("working sets must be positive")
        self.hot_lines = hot_lines
        self.warm_lines = warm_lines
        self.p_hot = p_hot
        self.p_warm = p_warm
        self.line_bytes = line_bytes
        self._rng = np.random.default_rng(seed)
        self._cold_cursor = 0
        # Address map: [hot | warm | cold...] in disjoint regions.
        self._warm_base = hot_lines
        self._cold_base = hot_lines + warm_lines

    def next_addresses(self, n: int) -> np.ndarray:
        """Generate the next ``n`` addresses (vectorized)."""
        u = self._rng.random(n)
        lines = np.empty(n, dtype=np.int64)
        hot = u < self.p_hot
        warm = (~hot) & (u < self.p_hot + self.p_warm)
        cold = ~(hot | warm)
        lines[hot] = self._rng.integers(0, self.hot_lines, hot.sum())
        lines[warm] = self._warm_base + self._rng.integers(
            0, self.warm_lines, warm.sum())
        n_cold = int(cold.sum())
        lines[cold] = (self._cold_base + self._cold_cursor
                       + np.arange(n_cold))
        self._cold_cursor += n_cold
        return lines * self.line_bytes
