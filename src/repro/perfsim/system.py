"""CMP system assembly from the Table 1 specification.

A :class:`CmpSystem` binds together the stacked-mesh NoC, the cache
hierarchy timing, the DRAM system, and the tile roles: per Fig. 5, each
chip's bottom row holds the four cores and the remaining twelve tiles
hold L2 banks (which also serve as directory homes). Memory controllers
sit at the four corners of the bottom tier, reached through the mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..power.processors import ChipSpec
from .cache import DEFAULT_HIERARCHY, CacheHierarchyTiming
from .memory import DEFAULT_DRAM, DramParams, MemorySystem
from .noc.network import MeshNetwork
from .noc.router import DEFAULT_ROUTER, RouterParams
from .noc.topology import MeshTopology, NodeId


@dataclass(frozen=True)
class SystemConfig:
    """Static configuration of one simulated CMP stack.

    Attributes:
        n_chips: stacked tiers.
        cores_per_chip: Table 1: 4.
        mesh_width / mesh_height: Table 1: 4x4.
        hierarchy: cache latencies/sizes.
        dram: memory timings.
        router: NoC timing.
    """

    n_chips: int
    cores_per_chip: int = 4
    mesh_width: int = 4
    mesh_height: int = 4
    hierarchy: CacheHierarchyTiming = field(default_factory=lambda: DEFAULT_HIERARCHY)
    dram: DramParams = field(default_factory=lambda: DEFAULT_DRAM)
    router: RouterParams = field(default_factory=lambda: DEFAULT_ROUTER)

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ConfigurationError("need at least one chip")
        if self.cores_per_chip > self.mesh_width * self.mesh_height:
            raise ConfigurationError(
                f"{self.cores_per_chip} cores do not fit a "
                f"{self.mesh_width}x{self.mesh_height} mesh"
            )

    @property
    def total_cores(self) -> int:
        """Cores across the stack (24 for 6 chips, 32 for 8)."""
        return self.n_chips * self.cores_per_chip


def config_for_stack(chip: ChipSpec, n_chips: int) -> SystemConfig:
    """Build the simulator configuration for a stack of Table 1 chips."""
    return SystemConfig(n_chips=n_chips, cores_per_chip=chip.num_cores)


class CmpSystem:
    """Instantiated hardware: topology, network, memory, tile roles."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.topo = MeshTopology(width=config.mesh_width,
                                 height=config.mesh_height,
                                 chips=config.n_chips)
        self.network = MeshNetwork(self.topo, config.router)
        self.memory = MemorySystem(config.dram)
        # Cores occupy the bottom row (y = 0) of every tier, like Fig. 5.
        self.core_nodes: tuple[NodeId, ...] = tuple(
            self.topo.node(c, x, 0)
            for c in range(config.n_chips)
            for x in range(config.cores_per_chip)
        )
        # L2 banks / directory homes: every non-core tile.
        core_set = set(self.core_nodes)
        self.bank_nodes: tuple[NodeId, ...] = tuple(
            n for n in self.topo.all_nodes() if n not in core_set
        )
        if not self.bank_nodes:
            raise ConfigurationError("no tiles left for L2 banks")
        # Memory controllers at the four corners of the bottom tier.
        w, h = config.mesh_width, config.mesh_height
        self.mem_nodes: tuple[NodeId, ...] = tuple(
            self.topo.node(0, x, y)
            for (x, y) in ((0, 0), (w - 1, 0), (0, h - 1), (w - 1, h - 1))
        )[: config.dram.num_controllers]

    def home_for(self, address: int) -> NodeId:
        """Home L2 bank (directory) of an address, line-interleaved."""
        line = address // self.config.hierarchy.line_bytes
        return self.bank_nodes[line % len(self.bank_nodes)]

    def mem_node_for(self, address: int) -> NodeId:
        """Tile adjacent to the controller serving an address."""
        return self.mem_nodes[self.memory.controller_for(address)
                              % len(self.mem_nodes)]

    def core_node(self, thread: int) -> NodeId:
        """Tile of the core running a given thread (block mapping)."""
        return self.core_nodes[thread % len(self.core_nodes)]
