"""Thread-scaling study (extension).

The paper fixes the thread count at one-per-core (24/32). This module
asks the adjacent question a reviewer would: how do the NPB programs
scale with threads on this system, and is one-thread-per-core actually
the right operating point? Speedup is limited by three effects the
models already carry — serial memory bandwidth, barrier imbalance
(extreme-value growth with N), and NoC path lengthening — so the
scaling curves come out Amdahl-shaped without any new fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .analytic import AnalyticModel
from .npb import get_profile
from .system import SystemConfig


@dataclass(frozen=True)
class ScalingPoint:
    """One (threads, speedup) sample."""

    threads: int
    time_s: float
    speedup: float
    efficiency: float


def thread_scaling(benchmark: str, n_chips: int, f_hz: float,
                   thread_counts: tuple[int, ...] | None = None
                   ) -> tuple[ScalingPoint, ...]:
    """Speedup vs thread count at a fixed clock.

    Parallel time is modelled as the per-thread instruction share
    executed at the analytic per-instruction rate for that thread count
    (which already includes the bandwidth and imbalance penalties that
    grow with N).
    """
    cfg = SystemConfig(n_chips=n_chips)
    counts = (thread_counts if thread_counts is not None
              else tuple(sorted({1, 2, 4, 8, cfg.total_cores // 2,
                                 cfg.total_cores}
                                - {0})))
    profile = get_profile(benchmark)
    total_instructions = profile.instructions_per_thread * cfg.total_cores
    points = []
    base_threads: int | None = None
    base_time = 0.0
    for n in sorted(counts):
        if n < 1 or n > cfg.total_cores:
            raise SimulationError(
                f"thread count {n} invalid for {cfg.total_cores} cores"
            )
        model = AnalyticModel(cfg, threads=n)
        per_instr = model.breakdown(profile, f_hz).seconds_per_instruction
        time_s = (total_instructions / n) * per_instr
        if base_threads is None:
            base_threads, base_time = n, time_s
        # Speedup relative to the smallest measured count, rescaled so
        # perfect scaling reads speedup == n.
        speedup = (base_time / time_s) * base_threads
        points.append(ScalingPoint(
            threads=n, time_s=time_s,
            speedup=speedup,
            efficiency=speedup / n,
        ))
    return tuple(points)


def parallel_efficiency_at_full(benchmark: str, n_chips: int,
                                f_hz: float) -> float:
    """Efficiency at one thread per core (the paper's operating point)."""
    points = thread_scaling(benchmark, n_chips, f_hz)
    return points[-1].efficiency
