"""Performance sensitivity sweeps (extension).

gem5-era methodology papers always report how conclusions shift with
the key uncertain parameters. This module provides the sweeps for the
quantities our gem5 substitute fixes by configuration:

* DRAM idle latency (Table 1's "160 cycles" anchored at the ladder
  floor — the interpretation choice documented in
  :mod:`repro.perfsim.memory`);
* NoC router pipeline depth;
* memory-controller count / bandwidth.

Each sweep reports the quantity the paper's Figs. 10-13 depend on —
the water-vs-reference relative execution time — so the robustness of
the headline numbers against these choices can be read directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SimulationError
from .analytic import AnalyticModel
from .memory import DramParams
from .npb import NPB_ORDER, get_profile
from .noc.router import RouterParams
from .system import SystemConfig


@dataclass(frozen=True)
class SensitivityPoint:
    """One parameter setting and the resulting figure-level outcome.

    Attributes:
        parameter: swept parameter name.
        value: the setting.
        mean_relative_time: average over the nine NPB programs of
            T(f_fast)/T(f_slow) — smaller = more benefit from the
            faster clock.
    """

    parameter: str
    value: float
    mean_relative_time: float


def _mean_relative(config: SystemConfig, f_fast_hz: float,
                   f_slow_hz: float) -> float:
    model = AnalyticModel(config)
    rels = [model.relative_time(get_profile(n), f_fast_hz, f_slow_hz)
            for n in NPB_ORDER]
    return sum(rels) / len(rels)


def dram_latency_sweep(latencies_ns: tuple[float, ...],
                       *, n_chips: int = 6,
                       f_fast_hz: float = 1.6e9,
                       f_slow_hz: float = 1.2e9
                       ) -> tuple[SensitivityPoint, ...]:
    """How the frequency benefit depends on the DRAM-latency choice.

    Longer fixed-time memory compresses the clock advantage — the
    knob behind the documented Table 1 interpretation.
    """
    if not latencies_ns:
        raise SimulationError("need at least one latency")
    out = []
    for ns in latencies_ns:
        cfg = SystemConfig(
            n_chips=n_chips,
            dram=DramParams(idle_latency_s=ns * 1e-9))
        out.append(SensitivityPoint(
            parameter="dram_idle_ns", value=float(ns),
            mean_relative_time=_mean_relative(cfg, f_fast_hz, f_slow_hz)))
    return tuple(out)


def router_pipeline_sweep(stages: tuple[int, ...],
                          *, n_chips: int = 6,
                          f_fast_hz: float = 1.6e9,
                          f_slow_hz: float = 1.2e9
                          ) -> tuple[SensitivityPoint, ...]:
    """Pipeline-depth sensitivity (NoC cycles scale with the clock, so
    deeper routers barely move the *relative* times — a useful
    robustness fact)."""
    if not stages:
        raise SimulationError("need at least one pipeline depth")
    out = []
    for s in stages:
        cfg = SystemConfig(n_chips=n_chips,
                           router=RouterParams(pipeline_stages=int(s)))
        out.append(SensitivityPoint(
            parameter="router_stages", value=float(s),
            mean_relative_time=_mean_relative(cfg, f_fast_hz, f_slow_hz)))
    return tuple(out)


def controller_count_sweep(counts: tuple[int, ...],
                           *, n_chips: int = 6,
                           f_fast_hz: float = 1.6e9,
                           f_slow_hz: float = 1.2e9
                           ) -> tuple[SensitivityPoint, ...]:
    """Memory-bandwidth sensitivity via the controller count."""
    if not counts:
        raise SimulationError("need at least one controller count")
    out = []
    for c in counts:
        cfg = SystemConfig(n_chips=n_chips,
                           dram=DramParams(num_controllers=int(c)))
        out.append(SensitivityPoint(
            parameter="controllers", value=float(c),
            mean_relative_time=_mean_relative(cfg, f_fast_hz, f_slow_hz)))
    return tuple(out)


def headline_robustness(latencies_ns: tuple[float, ...] = (
        60.0, 80.0, 110.0, 133.0, 160.0, 200.0)) -> dict[float, float]:
    """Average water-vs-pipe gain at the Fig. 10 operating points as a
    function of the DRAM-latency interpretation.

    Returns {latency_ns: mean gain}; the documented headline deviation
    band can be read straight off this table.
    """
    points = dram_latency_sweep(latencies_ns)
    return {p.value: 1.0 - p.mean_relative_time for p in points}
