"""MOESI directory-protocol traffic model.

Table 1's baseline keeps L1 caches coherent through a directory
co-located with the line's home L2 bank; the three message classes
(request, forward, response) each ride their own virtual channel.

The model enumerates the message legs of each transaction type so the
NoC sees realistic traffic:

* ``L2_HIT``            — request (1 flit) to home, data response (5).
* ``L2_HIT_FORWARD``    — request to home, forward (1) to the owning
  L1 (MOESI's O/M states), data response from owner: the 3-hop path.
* ``L2_MISS``           — request to home, miss to the memory
  controller, data from DRAM, response to the requester.

Transaction kinds are sampled per L1 miss from the workload profile's
miss rates (statistical mode); the address-stream mode derives them
from actual cache state.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..errors import SimulationError
from .noc.topology import NodeId


class TransactionKind(Enum):
    """Outcome class of an L1 miss."""

    L2_HIT = "l2_hit"
    L2_HIT_FORWARD = "l2_hit_forward"
    L2_MISS = "l2_miss"


@dataclass(frozen=True)
class MessageLeg:
    """One point-to-point message of a transaction."""

    src: NodeId
    dst: NodeId
    is_data: bool
    message_class: str


@dataclass(frozen=True)
class Transaction:
    """A full coherence transaction: ordered legs plus DRAM involvement."""

    kind: TransactionKind
    legs: tuple[MessageLeg, ...]
    needs_dram: bool


class DirectoryModel:
    """Samples transactions and lays out their message legs.

    Args:
        profile_l1_mpki / profile_l2_mpki: the workload's miss rates.
        sharing_fraction: fraction of L2-hit transactions that must be
            forwarded to a remote owner.
        seed: RNG seed for reproducible sampling.
    """

    def __init__(self, *, l1_mpki: float, l2_mpki: float,
                 sharing_fraction: float, seed: int = 0) -> None:
        if l2_mpki > l1_mpki:
            raise SimulationError("L2 MPKI cannot exceed L1 MPKI")
        self.l1_mpki = l1_mpki
        self.l2_mpki = l2_mpki
        self.sharing_fraction = sharing_fraction
        self._rng = np.random.default_rng(seed)
        # Conditional probability that an L1 miss also misses L2.
        self._p_l2_miss = (l2_mpki / l1_mpki) if l1_mpki > 0 else 0.0

    def sample_kind(self) -> TransactionKind:
        """Draw the outcome class of one L1 miss."""
        u = self._rng.random()
        if u < self._p_l2_miss:
            return TransactionKind.L2_MISS
        if self._rng.random() < self.sharing_fraction:
            return TransactionKind.L2_HIT_FORWARD
        return TransactionKind.L2_HIT

    def sample_owner(self, candidates: tuple[NodeId, ...],
                     exclude: NodeId) -> NodeId:
        """Pick the remote L1 that owns a forwarded line."""
        pool = [c for c in candidates if c != exclude]
        if not pool:
            return exclude
        return pool[self._rng.integers(0, len(pool))]

    def build_transaction(self, kind: TransactionKind, requester: NodeId,
                          home: NodeId, owner: NodeId | None,
                          mem_node: NodeId) -> Transaction:
        """Lay out the message legs of a transaction.

        Args:
            requester: tile whose L1 missed.
            home: home L2 bank / directory tile for the line.
            owner: owning tile for forwarded transactions.
            mem_node: tile hosting the memory controller.
        """
        req = MessageLeg(requester, home, is_data=False,
                         message_class="request")
        if kind is TransactionKind.L2_HIT:
            legs = (req,
                    MessageLeg(home, requester, is_data=True,
                               message_class="response"))
            return Transaction(kind, legs, needs_dram=False)
        if kind is TransactionKind.L2_HIT_FORWARD:
            if owner is None:
                raise SimulationError("forwarded transaction needs an owner")
            legs = (req,
                    MessageLeg(home, owner, is_data=False,
                               message_class="forward"),
                    MessageLeg(owner, requester, is_data=True,
                               message_class="response"))
            return Transaction(kind, legs, needs_dram=False)
        # L2 miss: to the directory, then the memory controller, then a
        # data response back to the requester.
        legs = (req,
                MessageLeg(home, mem_node, is_data=False,
                           message_class="request"),
                MessageLeg(mem_node, requester, is_data=True,
                           message_class="response"))
        return Transaction(kind, legs, needs_dram=True)
