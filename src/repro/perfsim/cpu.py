"""In-order core model.

The Table 1 baseline is a modest x86-64 in-order core: a blocking data
cache means every L1 miss exposes its full latency to the pipeline,
which is the behaviour the analytic tier assumes and the event-driven
tier reproduces. Between misses, the core retires instructions at its
mix-dependent base CPI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .workload import InstructionMix, WorkloadProfile

#: Per-class base costs in cycles (issue/execute, perfect memory).
_CLASS_CPI = {
    "int_alu": 1.0,
    "fp_alu": 1.4,   # pipelined FP with some dependency stalls
    "load": 1.0,     # L1 hit folded into the pipeline (Table 1: 1 cycle)
    "store": 1.0,
    "branch": 1.2,   # misprediction amortization on a short pipeline
}


def mix_base_cpi(mix: InstructionMix) -> float:
    """Base CPI implied by an instruction mix (perfect memory)."""
    return sum(_CLASS_CPI[k] * v for k, v in mix.fractions().items())


@dataclass
class CoreState:
    """Progress of one hardware thread."""

    thread: int
    retired: int = 0
    stall_s: float = 0.0
    compute_s: float = 0.0
    barrier_waits: int = 0


class InOrderCore:
    """Executes a workload profile's instruction stream in segments.

    The event-driven simulator advances a core by *segments*: a run of
    instructions executed back-to-back at the base CPI, terminated by an
    L1 miss (whose latency the NoC/memory subsystem supplies) or a
    barrier. Segment lengths are geometrically distributed around the
    profile's miss spacing — the standard way to drive a statistical
    core model from MPKI.

    Args:
        thread: thread index (also the seed offset, so every thread has
            an independent, reproducible stream).
        profile: the workload.
        f_hz: core clock.
        seed: base RNG seed.
    """

    def __init__(self, thread: int, profile: WorkloadProfile, f_hz: float,
                 seed: int = 0) -> None:
        if f_hz <= 0:
            raise SimulationError(f"core clock must be positive, got {f_hz}")
        self.state = CoreState(thread=thread)
        self.profile = profile
        self.f_hz = f_hz
        self._rng = np.random.default_rng(seed * 100_003 + thread)
        base = mix_base_cpi(profile.mix)
        # Honour the profile's calibrated base CPI, keeping the mix as
        # the source of relative class weights.
        self._cpi = profile.base_cpi if profile.base_cpi else base
        mpki = profile.l1_mpki
        self._mean_gap = 1000.0 / mpki if mpki > 0 else float("inf")

    @property
    def cycle_s(self) -> float:
        """Seconds per cycle."""
        return 1.0 / self.f_hz

    def next_segment(self, budget: int) -> tuple[int, float, bool]:
        """Draw the next execution segment.

        Args:
            budget: instructions remaining before the next barrier.

        Returns:
            (instructions, compute_seconds, ends_in_miss): the segment
            length, the time the core spends computing it, and whether
            an L1 miss terminates it (False means the barrier arrived
            first).
        """
        if budget <= 0:
            raise SimulationError("segment requested with empty budget")
        if self._mean_gap == float("inf"):
            n = budget
            ends_in_miss = False
        else:
            gap = 1 + int(self._rng.exponential(self._mean_gap))
            if gap >= budget:
                n = budget
                ends_in_miss = False
            else:
                n = gap
                ends_in_miss = True
        compute_s = n * self._cpi * self.cycle_s
        self.state.retired += n
        self.state.compute_s += compute_s
        return n, compute_s, ends_in_miss

    def record_stall(self, seconds: float) -> None:
        """Account a memory stall."""
        self.state.stall_s += seconds

    def barrier_work(self, nominal_kinstr: float, imbalance_cv: float
                     ) -> int:
        """Instructions this thread executes before the next barrier.

        Log-normal perturbation with the profile's imbalance CV models
        OpenMP loop imbalance; the slowest thread gates the barrier.
        """
        nominal = nominal_kinstr * 1000.0
        if imbalance_cv <= 0:
            return max(1, int(nominal))
        sigma = float(np.sqrt(np.log(1.0 + imbalance_cv ** 2)))
        mu = -0.5 * sigma * sigma  # unit mean
        factor = float(self._rng.lognormal(mu, sigma))
        return max(1, int(nominal * factor))
