"""Synthetic workload characterization.

gem5 executed the real NAS Parallel Benchmarks; offline we replace each
program with a behavioural profile — instruction mix, cache miss rates,
coherence intensity, synchronization structure — that produces the same
*frequency-scaling* behaviour, which is the property the paper's
evaluation exercises (all cooling options run identical binaries; only
the clock differs).

The profile numbers live in :mod:`repro.perfsim.npb`; this module
defines the schema and the derived quantities both simulator tiers use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction mix fractions (must sum to 1)."""

    int_alu: float
    fp_alu: float
    load: float
    store: float
    branch: float

    def __post_init__(self) -> None:
        total = (self.int_alu + self.fp_alu + self.load + self.store
                 + self.branch)
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(
                f"instruction mix must sum to 1, got {total}"
            )
        for name, v in self.fractions().items():
            if v < 0:
                raise SimulationError(
                    f"instruction mix fraction {name} negative: {v}"
                )

    def fractions(self) -> dict[str, float]:
        """Mix as a dict."""
        return {
            "int_alu": self.int_alu,
            "fp_alu": self.fp_alu,
            "load": self.load,
            "store": self.store,
            "branch": self.branch,
        }

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory."""
        return self.load + self.store


@dataclass(frozen=True)
class WorkloadProfile:
    """Behavioural profile of one parallel program.

    Attributes:
        name: benchmark name ("cg", "ep", ...).
        mix: dynamic instruction mix.
        base_cpi: pipeline CPI with a perfect memory system (captures
            issue width, FP latency, branch effects).
        l1_mpki: L1 data misses per kilo-instruction (served by L2).
        l2_mpki: L2 misses per kilo-instruction (served by DRAM,
            traversing the NoC to the directory and memory controller).
        sharing_fraction: fraction of L2 misses that hit remotely-owned
            lines and take the 3-hop directory path (MOESI forwarding).
        barrier_interval_kinstr: kilo-instructions between OpenMP
            barriers (drives synchronization overhead and imbalance).
        imbalance_cv: coefficient of variation of per-thread work
            between barriers.
        instructions_per_thread: dynamic instructions each thread
            executes (scaled-down working budget; relative times are
            insensitive to it once >> barrier interval).
    """

    name: str
    mix: InstructionMix
    base_cpi: float
    l1_mpki: float
    l2_mpki: float
    sharing_fraction: float
    barrier_interval_kinstr: float
    imbalance_cv: float
    instructions_per_thread: int = 200_000

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise SimulationError(
                f"{self.name}: base CPI must be positive, got {self.base_cpi}"
            )
        if self.l1_mpki < 0 or self.l2_mpki < 0:
            raise SimulationError(
                f"{self.name}: MPKI values must be non-negative"
            )
        if self.l2_mpki > self.l1_mpki:
            raise SimulationError(
                f"{self.name}: L2 MPKI ({self.l2_mpki}) cannot exceed "
                f"L1 MPKI ({self.l1_mpki}); L2 misses are a subset"
            )
        if not (0.0 <= self.sharing_fraction <= 1.0):
            raise SimulationError(
                f"{self.name}: sharing fraction must be in [0, 1]"
            )
        if self.barrier_interval_kinstr <= 0:
            raise SimulationError(
                f"{self.name}: barrier interval must be positive"
            )
        if self.instructions_per_thread <= 0:
            raise SimulationError(
                f"{self.name}: instruction budget must be positive"
            )

    def memory_stall_seconds_per_instr(self, l2_hit_s: float,
                                       dram_s: float,
                                       noc_2hop_s: float,
                                       noc_3hop_s: float) -> float:
        """Average memory stall time per instruction, seconds.

        Combines the L1-miss/L2-hit path, the DRAM path, and the
        directory-forwarding path weighted by the profile's miss rates.
        Used by the analytic tier; the event-driven tier reproduces the
        same structure stochastically.
        """
        per_l1_miss = l2_hit_s + noc_2hop_s
        per_l2_miss = dram_s
        per_shared = noc_3hop_s
        l1_only = (self.l1_mpki - self.l2_mpki) / 1000.0
        l2 = self.l2_mpki / 1000.0
        return (l1_only * per_l1_miss
                + l2 * (per_l2_miss + noc_2hop_s)
                + l2 * self.sharing_fraction * per_shared)
