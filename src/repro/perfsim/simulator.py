"""Full-system discrete-event simulation driver (the gem5 substitute).

Each hardware thread alternates compute segments (priced by the core
model) with memory stalls (priced by the coherence protocol, the
contended NoC, and the contended DRAM controllers) and OpenMP barriers
(the slowest thread gates everyone). The only configuration difference
between cooling options is the core clock, exactly as in the paper's
experiment, so relative execution times isolate the frequency effect —
including the sub-linear scaling caused by fixed-nanosecond DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .coherence import DirectoryModel, TransactionKind
from .cpu import InOrderCore
from .events import EventQueue
from .npb import get_profile
from .system import CmpSystem, SystemConfig
from .workload import WorkloadProfile


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one full-system run.

    Attributes:
        exec_time_s: wall-clock time of the parallel region.
        instructions: total retired instructions.
        compute_s / stall_s: aggregate core-seconds by category.
        noc_packets: packets the mesh carried.
        noc_mean_latency_cycles: average packet latency.
        dram_requests: line fills served.
        barriers: barrier episodes executed.
    """

    exec_time_s: float
    instructions: int
    compute_s: float
    stall_s: float
    noc_packets: int
    noc_mean_latency_cycles: float
    dram_requests: int
    barriers: int

    @property
    def memory_bound_fraction(self) -> float:
        """Share of core time spent stalled — the beta of the analytic tier."""
        total = self.compute_s + self.stall_s
        return self.stall_s / total if total > 0 else 0.0


class FullSystemSimulator:
    """Simulates one (system, workload, frequency) triple.

    Args:
        config: hardware configuration.
        profile: workload profile (or name via :func:`simulate_npb`).
        f_hz: core clock.
        threads: thread count; defaults to all cores (the paper runs
            24/32 threads on 6/8-chip stacks).
        seed: reproducibility seed.
    """

    def __init__(self, config: SystemConfig, profile: WorkloadProfile,
                 f_hz: float, *, threads: int | None = None,
                 seed: int = 0,
                 instructions_per_thread: int | None = None) -> None:
        if instructions_per_thread is not None:
            from dataclasses import replace
            profile = replace(profile,
                              instructions_per_thread=instructions_per_thread)
        self.system = CmpSystem(config)
        self.profile = profile
        self.f_hz = f_hz
        self.threads = threads if threads is not None else config.total_cores
        if self.threads < 1 or self.threads > config.total_cores:
            raise SimulationError(
                f"thread count {self.threads} invalid for "
                f"{config.total_cores} cores"
            )
        self.seed = seed
        self._queue = EventQueue()
        self._cores = [InOrderCore(t, profile, f_hz, seed)
                       for t in range(self.threads)]
        self._dir = DirectoryModel(
            l1_mpki=profile.l1_mpki,
            l2_mpki=profile.l2_mpki,
            sharing_fraction=profile.sharing_fraction,
            seed=seed + 7,
        )
        import numpy as np
        self._addr_rng = np.random.default_rng(seed + 13)
        # OpenMP structure: every thread passes the same barrier episodes
        # (parallel-for rounds); per-episode work is perturbed per thread
        # by the profile's imbalance CV.
        self._episodes = max(1, round(profile.instructions_per_thread
                                      / (profile.barrier_interval_kinstr
                                         * 1000.0)))
        self._episode_of = [0] * self.threads
        self._barrier_budget = [0] * self.threads
        self._arrived = 0
        self._latest_arrival = 0.0
        self._barriers = 0
        self._done = 0
        self._finish_time = 0.0

    # -- memory path ---------------------------------------------------------

    def _miss_latency(self, thread: int, now_s: float) -> float:
        """Completion time of one L1 miss issued at ``now_s``."""
        sys = self.system
        cyc = 1.0 / self.f_hz
        address = int(self._addr_rng.integers(0, 1 << 40)) << 6
        requester = sys.core_node(thread)
        home = sys.home_for(address)
        kind = self._dir.sample_kind()
        owner = None
        if kind is TransactionKind.L2_HIT_FORWARD:
            owner = self._dir.sample_owner(sys.core_nodes, requester)
        txn = self._dir.build_transaction(
            kind, requester, home, owner, sys.mem_node_for(address))
        t_cycles = now_s / cyc
        # L2 lookup at the home bank.
        t_cycles += self.system.config.hierarchy.l2_cycles
        for i, leg in enumerate(txn.legs):
            t_cycles = sys.network.deliver(
                leg.src, leg.dst, is_data=leg.is_data,
                depart_cycle=t_cycles)
            if txn.needs_dram and i == 1:
                # The request reached the memory controller; the DRAM
                # access happens in wall-clock time, not cycles.
                t_s = sys.memory.access(t_cycles * cyc, address)
                t_cycles = t_s / cyc
        return t_cycles * cyc

    # -- thread progression ----------------------------------------------------

    def _resume(self, thread: int) -> None:
        now = self._queue.now
        core = self._cores[thread]
        if self._episode_of[thread] >= self._episodes:
            self._done += 1
            self._finish_time = max(self._finish_time, now)
            return
        if self._barrier_budget[thread] <= 0:
            # Draw this episode's perturbed work quantum.
            self._barrier_budget[thread] = core.barrier_work(
                self.profile.barrier_interval_kinstr,
                self.profile.imbalance_cv)
        n, compute_s, ends_in_miss = core.next_segment(
            self._barrier_budget[thread])
        self._barrier_budget[thread] -= n
        t_after = now + compute_s
        if ends_in_miss:
            done_at = self._miss_latency(thread, t_after)
            core.record_stall(done_at - t_after)
            self._queue.schedule_at(done_at,
                                    lambda th=thread: self._resume(th))
            return
        # Episode finished: meet the others at the barrier.
        self._queue.schedule_at(t_after,
                                lambda th=thread: self._at_barrier(th))

    def _at_barrier(self, thread: int) -> None:
        now = self._queue.now
        self._cores[thread].state.barrier_waits += 1
        self._episode_of[thread] += 1
        self._arrived += 1
        self._latest_arrival = max(self._latest_arrival, now)
        if self._arrived < self.threads:
            return
        # Everyone arrived: release all threads at the latest arrival.
        release = self._latest_arrival
        self._arrived = 0
        self._latest_arrival = 0.0
        self._barriers += 1
        for t in range(self.threads):
            self._queue.schedule_at(release,
                                    lambda th=t: self._resume(th))

    # -- run -------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the workload to completion."""
        for t in range(self.threads):
            self._queue.schedule(0.0, lambda th=t: self._resume(th))
        self._queue.run()
        if self._done != self.threads:
            raise SimulationError(
                f"simulation ended with {self._done}/{self.threads} "
                f"threads finished"
            )
        stats = self.system.network.stats
        return SimulationResult(
            exec_time_s=self._finish_time,
            instructions=sum(c.state.retired for c in self._cores),
            compute_s=sum(c.state.compute_s for c in self._cores),
            stall_s=sum(c.state.stall_s for c in self._cores),
            noc_packets=stats.packets,
            noc_mean_latency_cycles=stats.mean_latency_cycles,
            dram_requests=sum(c.requests
                              for c in self.system.memory.controllers),
            barriers=self._barriers,
        )


def simulate_npb(benchmark: str, config: SystemConfig, f_hz: float, *,
                 threads: int | None = None, seed: int = 0,
                 instructions_per_thread: int | None = None
                 ) -> SimulationResult:
    """Run one NPB program on a system at a clock frequency."""
    return FullSystemSimulator(
        config, get_profile(benchmark), f_hz, threads=threads, seed=seed,
        instructions_per_thread=instructions_per_thread).run()
