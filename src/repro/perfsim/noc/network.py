"""Cycle-approximate network simulation with link contention.

Packets traverse their XY-Z route link by link; every directed link is
a serially-reusable resource with a ``next_free`` time. A packet arrives
at a link, waits until the link frees, holds it for its serialization
time, and proceeds. Pipeline depth is charged per hop. This is the
standard packet-granularity approximation of a wormhole mesh: it
reproduces zero-load latency exactly and saturation trends to first
order, at a small fraction of a flit-accurate simulator's cost.

The network can run standalone (``deliver`` with explicit timestamps,
used by the NoC unit tests and the ablation bench) or inside the
full-system event simulation (``transfer_delay``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import SimulationError
from .router import DEFAULT_ROUTER, RouterParams
from .routing import links_of, xy_route
from .topology import MeshTopology, NodeId


@dataclass
class NetworkStats:
    """Aggregate traffic counters."""

    packets: int = 0
    flits: int = 0
    total_latency_cycles: float = 0.0
    total_queue_cycles: float = 0.0
    max_latency_cycles: float = 0.0

    @property
    def mean_latency_cycles(self) -> float:
        """Average end-to-end packet latency."""
        return self.total_latency_cycles / self.packets if self.packets else 0.0

    @property
    def mean_queue_cycles(self) -> float:
        """Average cycles spent waiting for busy links."""
        return self.total_queue_cycles / self.packets if self.packets else 0.0


class MeshNetwork:
    """A stacked-mesh NoC with per-link contention state.

    All times are in cycles; the caller converts through the clock.

    Args:
        topo: mesh/stack shape.
        params: router timing (Table 1 defaults).
        vertical_link_cycles: extra cycles for tier-crossing links
            (TSV/TCI serialization).
    """

    def __init__(self, topo: MeshTopology,
                 params: RouterParams = DEFAULT_ROUTER,
                 vertical_link_cycles: int = 1) -> None:
        self.topo = topo
        self.params = params
        self.vertical_link_cycles = vertical_link_cycles
        self._link_free: dict[tuple[NodeId, NodeId], float] = {}
        self.stats = NetworkStats()

    def reset(self) -> None:
        """Clear contention state and statistics."""
        self._link_free.clear()
        self.stats = NetworkStats()

    def _hop_cycles(self, a: NodeId, b: NodeId) -> int:
        base = self.params.pipeline_stages + self.params.link_cycles
        if a.chip != b.chip:
            base += self.vertical_link_cycles
        return base

    def deliver(self, src: NodeId, dst: NodeId, *, is_data: bool,
                depart_cycle: float) -> float:
        """Send one packet; returns its arrival cycle.

        Contention is resolved in call order at equal timestamps (the
        event engine's deterministic ordering makes runs reproducible).
        """
        if src == dst:
            return depart_cycle
        flits = self.params.packet_flits(is_data)
        occupancy = self.params.occupancy_cycles(flits)
        path = xy_route(self.topo, src, dst)
        t = depart_cycle
        queued = 0.0
        for a, b in links_of(path):
            key = (a, b)
            free_at = self._link_free.get(key, 0.0)
            start = max(t, free_at)
            queued += start - t
            self._link_free[key] = start + occupancy
            t = start + self._hop_cycles(a, b)
        t += flits - 1  # wormhole tail serialization at the receiver
        latency = t - depart_cycle
        s = self.stats
        s.packets += 1
        s.flits += flits
        s.total_latency_cycles += latency
        s.total_queue_cycles += queued
        s.max_latency_cycles = max(s.max_latency_cycles, latency)
        return t

    def zero_load_cycles(self, src: NodeId, dst: NodeId, *,
                         is_data: bool) -> int:
        """Uncontended latency between two nodes."""
        hops = self.topo.hop_distance(src, dst)
        flits = self.params.packet_flits(is_data)
        vertical = abs(src.chip - dst.chip)
        return (self.params.zero_load_cycles(hops, flits)
                + vertical * self.vertical_link_cycles)

    def mean_hop_distance(self) -> float:
        """Average hop distance over all node pairs (analytic tier)."""
        nodes = self.topo.all_nodes()
        if len(nodes) == 1:
            return 0.0
        total = 0
        count = 0
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                total += self.topo.hop_distance(a, b)
                count += 1
        return total / count


def expected_noc_cycles(topo: MeshTopology,
                        params: RouterParams = DEFAULT_ROUTER,
                        *, vertical_link_cycles: int = 1,
                        legs: int = 2) -> float:
    """Expected uncontended cycles of a coherence transaction.

    A 2-leg transaction is request (control) + response (data) over the
    mean hop distance; a 3-leg adds the directory forward. Used by the
    analytic performance tier.
    """
    if legs not in (2, 3):
        raise SimulationError(f"coherence transactions have 2 or 3 legs, "
                              f"got {legs}")
    net = MeshNetwork(topo, params, vertical_link_cycles)
    mean_hops = net.mean_hop_distance()
    h = max(1, round(mean_hops))
    control = params.zero_load_cycles(h, params.control_flits)
    data = params.zero_load_cycles(h, params.data_flits)
    if legs == 2:
        return float(control + data)
    return float(control + control + data)
