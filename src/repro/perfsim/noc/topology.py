"""On-chip network topology: the Table 1 4x4 mesh, stacked in 3-D.

Each chip carries a 4x4 mesh of routers (one per tile). In a 3-D stack,
vertically adjacent routers are joined by through-silicon/inductive
links (the paper neglects their power; we model their latency as one
cycle per tier). Node addresses are (chip, x, y).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError


@dataclass(frozen=True)
class NodeId:
    """Address of one router/tile: chip index and mesh coordinates."""

    chip: int
    x: int
    y: int

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"c{self.chip}({self.x},{self.y})"


@dataclass(frozen=True)
class MeshTopology:
    """A stack of ``chips`` identical ``width`` x ``height`` meshes.

    Attributes:
        width, height: mesh dimensions (Table 1: 4x4).
        chips: number of stacked tiers.
    """

    width: int = 4
    height: int = 4
    chips: int = 1

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1 or self.chips < 1:
            raise ConfigurationError(
                f"mesh dimensions must be positive, got "
                f"{self.width}x{self.height}x{self.chips}"
            )

    @property
    def nodes_per_chip(self) -> int:
        """Routers per tier."""
        return self.width * self.height

    @property
    def num_nodes(self) -> int:
        """Total routers in the stack."""
        return self.nodes_per_chip * self.chips

    def node(self, chip: int, x: int, y: int) -> NodeId:
        """Validated node constructor."""
        if not (0 <= chip < self.chips and 0 <= x < self.width
                and 0 <= y < self.height):
            raise ConfigurationError(
                f"node c{chip}({x},{y}) outside mesh "
                f"{self.width}x{self.height}x{self.chips}"
            )
        return NodeId(chip, x, y)

    def all_nodes(self) -> tuple[NodeId, ...]:
        """Every node, chip-major then row-major."""
        return tuple(
            NodeId(c, x, y)
            for c in range(self.chips)
            for y in range(self.height)
            for x in range(self.width)
        )

    def tile_index(self, node: NodeId) -> int:
        """Flat per-chip tile index (row-major)."""
        return node.y * self.width + node.x

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Hops along XY-then-Z dimension-order routing."""
        return (abs(a.x - b.x) + abs(a.y - b.y) + abs(a.chip - b.chip))

    def contains(self, node: NodeId) -> bool:
        """True if the node lies in this topology."""
        return (0 <= node.chip < self.chips and 0 <= node.x < self.width
                and 0 <= node.y < self.height)
