"""Router timing model: the Table 1 pipeline.

Table 1 specifies a three-stage pipeline — [RC][VSA][ST/LT] (route
computation; virtual-channel + switch allocation; switch and link
traversal) — with 3 virtual channels of 5 flits each, 1-flit control and
5-flit data packets.

The cycle-approximate model charges each hop the pipeline depth plus
wormhole serialization at the destination, and resolves contention at
packet granularity: each output link is a resource that a packet holds
for ``flits`` cycles. That captures the first-order queueing the paper's
NoC contributes to memory latency without simulating individual flits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError


@dataclass(frozen=True)
class RouterParams:
    """Timing constants of one router (Table 1 defaults).

    Attributes:
        pipeline_stages: cycles a head flit spends per router ([RC],
            [VSA], [ST/LT] = 3).
        num_vcs: virtual channels per port (one per message class).
        vc_buffer_flits: buffer depth per VC.
        control_flits / data_flits: packet sizes.
        link_cycles: additional cycles per link traversal beyond ST/LT
            (0 for the 2-D mesh; vertical TSV/TCI links use 1).
    """

    pipeline_stages: int = 3
    num_vcs: int = 3
    vc_buffer_flits: int = 5
    control_flits: int = 1
    data_flits: int = 5
    link_cycles: int = 0

    def __post_init__(self) -> None:
        if self.pipeline_stages < 1:
            raise ConfigurationError("router needs at least one stage")
        if self.num_vcs < 1 or self.vc_buffer_flits < 1:
            raise ConfigurationError("router needs VCs with buffers")
        if self.control_flits < 1 or self.data_flits < 1:
            raise ConfigurationError("packets need at least one flit")

    def packet_flits(self, is_data: bool) -> int:
        """Flit count for a control or data packet."""
        return self.data_flits if is_data else self.control_flits

    def zero_load_cycles(self, hops: int, flits: int) -> int:
        """Uncontended latency of a packet over ``hops`` links.

        Head flit: pipeline_stages per router plus link cycles; tail
        adds (flits - 1) serialization cycles once at the end (wormhole:
        body flits stream behind the head).
        """
        if hops < 0:
            raise ConfigurationError(f"negative hop count {hops}")
        if hops == 0:
            return 0
        per_hop = self.pipeline_stages + self.link_cycles
        return hops * per_hop + (flits - 1)

    def occupancy_cycles(self, flits: int) -> int:
        """Cycles a packet holds one output link (serialization)."""
        return flits


DEFAULT_ROUTER = RouterParams()
"""Table 1 router: [RC][VSA][ST/LT], 3 VCs x 5 flits, 1/5-flit packets."""
