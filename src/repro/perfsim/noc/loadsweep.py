"""NoC load-latency characterization (extension).

The classic network evaluation the Table 1 mesh deserves: inject
uniform-random traffic at a swept offered load and record the mean
packet latency. The resulting hockey-stick curve locates the saturation
throughput, which bounds how much coherence traffic the full-system
simulator can push before queueing dominates — context for the NoC
terms in the analytic performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError
from .network import MeshNetwork
from .router import DEFAULT_ROUTER, RouterParams
from .topology import MeshTopology


TRAFFIC_PATTERNS = ("uniform", "transpose", "tornado", "neighbor")
"""Synthetic patterns: uniform random; matrix-transpose (x,y)->(y,x);
tornado (half-width offset along x — the classic adversarial pattern
for dimension-order routing); nearest-neighbor (+1 in x)."""


def pattern_destination(pattern: str, src, topo: MeshTopology,
                        rng: np.random.Generator):
    """Destination node of one packet under a traffic pattern."""
    from .topology import NodeId
    if pattern == "uniform":
        nodes = topo.all_nodes()
        j = int(rng.integers(0, len(nodes)))
        return nodes[j]
    if pattern == "transpose":
        return NodeId(src.chip, src.y % topo.width, src.x % topo.height)
    if pattern == "tornado":
        return NodeId(src.chip, (src.x + topo.width // 2) % topo.width,
                      src.y)
    if pattern == "neighbor":
        return NodeId(src.chip, (src.x + 1) % topo.width, src.y)
    raise SimulationError(
        f"unknown traffic pattern {pattern!r}; known: {TRAFFIC_PATTERNS}"
    )


@dataclass(frozen=True)
class LoadPoint:
    """One point of the load-latency curve.

    Attributes:
        offered_load: injection probability per node per cycle.
        mean_latency_cycles: average end-to-end packet latency.
        mean_queue_cycles: average time spent waiting for links.
        delivered: packets delivered during the measurement window.
    """

    offered_load: float
    mean_latency_cycles: float
    mean_queue_cycles: float
    delivered: int


def measure_load_point(topo: MeshTopology, offered_load: float, *,
                       params: RouterParams = DEFAULT_ROUTER,
                       window_cycles: int = 2000, data_fraction: float = 0.5,
                       pattern: str = "uniform",
                       seed: int = 0) -> LoadPoint:
    """Mean latency under synthetic traffic at one offered load.

    Packets are injected per (node, cycle) with probability
    ``offered_load``; destinations follow the traffic ``pattern``; sizes
    drawn control/data with ``data_fraction``.
    """
    if not (0.0 < offered_load <= 1.0):
        raise SimulationError(
            f"offered load must be in (0, 1], got {offered_load}"
        )
    if window_cycles < 1:
        raise SimulationError("need a positive measurement window")
    rng = np.random.default_rng(seed)
    net = MeshNetwork(topo, params)
    nodes = topo.all_nodes()
    n = len(nodes)
    for cycle in range(window_cycles):
        inject = rng.random(n) < offered_load
        for i in np.nonzero(inject)[0]:
            src = nodes[int(i)]
            dst = pattern_destination(pattern, src, topo, rng)
            if dst == src:
                continue
            net.deliver(src, dst,
                        is_data=bool(rng.random() < data_fraction),
                        depart_cycle=float(cycle))
    s = net.stats
    return LoadPoint(
        offered_load=offered_load,
        mean_latency_cycles=s.mean_latency_cycles,
        mean_queue_cycles=s.mean_queue_cycles,
        delivered=s.packets,
    )


def load_latency_curve(topo: MeshTopology,
                       loads: tuple[float, ...] = (
                           0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30),
                       *, params: RouterParams = DEFAULT_ROUTER,
                       window_cycles: int = 2000, seed: int = 0
                       ) -> tuple[LoadPoint, ...]:
    """The full hockey-stick curve."""
    return tuple(
        measure_load_point(topo, load, params=params,
                           window_cycles=window_cycles, seed=seed)
        for load in loads
    )


def saturation_load(topo: MeshTopology, *,
                    params: RouterParams = DEFAULT_ROUTER,
                    latency_multiple: float = 3.0,
                    window_cycles: int = 1500, seed: int = 0) -> float:
    """Offered load at which mean latency hits a multiple of zero-load.

    Bisects between a light and a heavy load; the conventional
    saturation definition (latency = 3x zero-load) by default.
    """
    zero = measure_load_point(topo, 0.005, params=params,
                              window_cycles=window_cycles, seed=seed)
    target = latency_multiple * zero.mean_latency_cycles
    lo, hi = 0.005, 0.9
    if measure_load_point(topo, hi, params=params,
                          window_cycles=window_cycles,
                          seed=seed).mean_latency_cycles < target:
        return hi
    for _ in range(12):
        mid = 0.5 * (lo + hi)
        point = measure_load_point(topo, mid, params=params,
                                   window_cycles=window_cycles, seed=seed)
        if point.mean_latency_cycles < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
