"""Flit-level router microsimulator (validation extension).

The network model used by the full-system simulator is packet-granular:
per-hop pipeline charges plus link occupancy. This module implements
the reference it approximates — a cycle-accurate wormhole router pair
with explicit virtual channels, credit-based flow control, and
flit-by-flit switch traversal — for a single link, which is where the
approximation could err. The test suite uses it to validate:

* zero-load latency: identical to the packet model's formula;
* back-to-back serialization: a trailing packet waits for the leader's
  tail flits exactly as the packet model's link-occupancy rule charges
  — on one physical link, virtual channels share bandwidth rather than
  add it, so the two models coincide (VCs earn their keep against
  head-of-line blocking across *different* routes, and by giving each
  coherence message class its own deadlock-free lane).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import SimulationError
from ...obs import counter, span
from .router import DEFAULT_ROUTER, RouterParams


@dataclass
class _Packet:
    pid: int
    vc: int
    flits: int
    inject_cycle: int
    flits_sent: int = 0
    done_cycle: int | None = None


@dataclass
class FlitLink:
    """One router-to-router link with VC buffers and credits.

    Models the downstream input buffers (per-VC, ``vc_buffer_flits``
    credits), a round-robin VC allocator for the single physical link,
    and the router pipeline delay ahead of the link stage.

    Args:
        params: Table 1 router constants.
    """

    params: RouterParams = field(default_factory=lambda: DEFAULT_ROUTER)

    def __post_init__(self) -> None:
        self._queues: list[list[_Packet]] = [
            [] for _ in range(self.params.num_vcs)]
        self._credits = [self.params.vc_buffer_flits] * self.params.num_vcs
        self._drain_at: list[list[int]] = [
            [] for _ in range(self.params.num_vcs)]
        self._rr = 0
        self._cycle = 0
        self.delivered: list[_Packet] = []
        self._delivered_by_pid: dict[int, _Packet] = {}
        self._next_pid = 0

    def inject(self, vc: int, flits: int, cycle: int) -> int:
        """Queue a packet for transmission; returns its packet id."""
        if not (0 <= vc < self.params.num_vcs):
            raise SimulationError(f"vc {vc} out of range")
        if flits < 1:
            raise SimulationError("packet needs at least one flit")
        if cycle < self._cycle:
            raise SimulationError("cannot inject in the past")
        pkt = _Packet(pid=self._next_pid, vc=vc, flits=flits,
                      inject_cycle=cycle)
        self._next_pid += 1
        self._queues[vc].append(pkt)
        return pkt.pid

    def _receiver_drain(self) -> None:
        """The downstream router drains one flit per VC per cycle,
        returning a credit ``pipeline`` cycles later (credit loop)."""
        for vc in range(self.params.num_vcs):
            arrivals = self._drain_at[vc]
            while arrivals and arrivals[0] <= self._cycle:
                arrivals.pop(0)
                self._credits[vc] += 1

    def step(self) -> None:
        """Advance one cycle: credits return, one flit crosses the link."""
        self._receiver_drain()
        # Round-robin over VCs with a ready head packet and a credit.
        for offset in range(self.params.num_vcs):
            vc = (self._rr + offset) % self.params.num_vcs
            q = self._queues[vc]
            if not q:
                continue
            head = q[0]
            ready_at = head.inject_cycle + self.params.pipeline_stages
            if self._cycle < ready_at or self._credits[vc] == 0:
                continue
            self._credits[vc] -= 1
            head.flits_sent += 1
            # The downstream buffer frees this flit after its own
            # pipeline (credit round trip).
            self._drain_at[vc].append(
                self._cycle + self.params.pipeline_stages)
            if head.flits_sent == head.flits:
                # The tail crosses during this cycle; latency counts the
                # cycle it is sent (the packet model's convention).
                head.done_cycle = self._cycle
                self.delivered.append(q.pop(0))
                self._delivered_by_pid[head.pid] = head
                counter("noc.flits_routed").inc(head.flits)
                counter("noc.packets_delivered").inc()
            self._rr = (vc + 1) % self.params.num_vcs
            break
        self._cycle += 1

    def run_until_drained(self, *, max_cycles: int = 100_000) -> int:
        """Step until every injected packet is delivered."""
        for _ in range(max_cycles):
            if not any(self._queues):
                return self._cycle
            self.step()
        raise SimulationError(
            f"link did not drain within {max_cycles} cycles"
        )

    def latency_of(self, pid: int) -> int:
        """Inject-to-tail latency of a delivered packet.

        O(1) via the delivery index — validation sweeps query every
        packet of a long run, which made a ``delivered`` scan
        quadratic over the campaign.
        """
        p = self._delivered_by_pid.get(pid)
        if p is None or p.done_cycle is None:
            raise SimulationError(f"packet {pid} not delivered")
        return p.done_cycle - p.inject_cycle


def zero_load_flit_latency(flits: int,
                           params: RouterParams = DEFAULT_ROUTER) -> int:
    """Reference single-hop latency measured on the flit model."""
    with span("noc.flit_latency", flits=flits):
        link = FlitLink(params=params)
        pid = link.inject(vc=0, flits=flits, cycle=0)
        link.run_until_drained()
        return link.latency_of(pid)
