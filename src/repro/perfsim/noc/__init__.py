"""Network-on-chip: mesh topology, XY routing, router timing, contention."""

from .loadsweep import (
    LoadPoint,
    load_latency_curve,
    measure_load_point,
    saturation_load,
)
from .network import MeshNetwork, NetworkStats, expected_noc_cycles
from .router import DEFAULT_ROUTER, RouterParams
from .routing import links_of, vc_for_class, xy_route
from .topology import MeshTopology, NodeId

__all__ = [
    "MeshTopology",
    "NodeId",
    "xy_route",
    "links_of",
    "vc_for_class",
    "RouterParams",
    "DEFAULT_ROUTER",
    "MeshNetwork",
    "NetworkStats",
    "expected_noc_cycles",
    "LoadPoint",
    "measure_load_point",
    "load_latency_curve",
    "saturation_load",
]
