"""Deterministic dimension-order (XY then Z) routing.

Wormhole meshes with XY dimension-order routing are deadlock-free with
the Table 1 virtual-channel assignment (one VC per coherence message
class breaks protocol deadlocks; XY breaks routing deadlocks). The 3-D
extension routes within the source tier first, then vertically — the
standard choice when vertical links are serialized TSV/TCI buses.
"""

from __future__ import annotations

from ...errors import SimulationError
from .topology import MeshTopology, NodeId


def xy_route(topo: MeshTopology, src: NodeId, dst: NodeId
             ) -> tuple[NodeId, ...]:
    """The full node sequence from src to dst, inclusive of endpoints.

    X is resolved first, then Y, then the vertical (chip) dimension.
    A property test asserts the path length always equals
    ``topo.hop_distance(src, dst)`` and every step moves one hop.
    """
    for n in (src, dst):
        if not topo.contains(n):
            raise SimulationError(f"node {n} outside topology")
    path = [src]
    x, y, c = src.x, src.y, src.chip
    while x != dst.x:
        x += 1 if dst.x > x else -1
        path.append(NodeId(c, x, y))
    while y != dst.y:
        y += 1 if dst.y > y else -1
        path.append(NodeId(c, x, y))
    while c != dst.chip:
        c += 1 if dst.chip > c else -1
        path.append(NodeId(c, x, y))
    return tuple(path)


def links_of(path: tuple[NodeId, ...]) -> tuple[tuple[NodeId, NodeId], ...]:
    """Directed links traversed by a path."""
    return tuple(zip(path[:-1], path[1:]))


def vc_for_class(message_class: str) -> int:
    """Virtual channel for a coherence message class.

    Table 1: 3 VCs, one per message class — requests, forwards/probes,
    responses. Keeping classes on disjoint VCs is what makes the MOESI
    protocol deadlock-free on the mesh.
    """
    try:
        return {"request": 0, "forward": 1, "response": 2}[message_class]
    except KeyError:
        raise SimulationError(
            f"unknown message class {message_class!r}; expected request/"
            f"forward/response"
        ) from None
