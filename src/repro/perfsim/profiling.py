"""Address-accurate profile validation (extension).

The statistical full-system mode drives misses from each NPB profile's
nominal MPKI. This module closes the loop the other way: it constructs
a synthetic address stream whose locality realizes the profile's miss
rates on *real* set-associative caches (the Table 1 hierarchy), then
measures the MPKI those caches actually produce. The consistency bench
asserts the two agree, which is what justifies the statistical mode's
shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .cache import (
    DEFAULT_HIERARCHY,
    CacheHierarchyTiming,
    SetAssociativeCache,
    SyntheticAddressStream,
)
from .workload import WorkloadProfile


def stream_for_profile(profile: WorkloadProfile, *,
                       hierarchy: CacheHierarchyTiming = DEFAULT_HIERARCHY,
                       seed: int = 0) -> SyntheticAddressStream:
    """Build an address stream that realizes a profile's miss rates.

    Construction: memory accesses occur at ``mix.memory_fraction`` per
    instruction. An access that touches the *cold* (streaming) region
    misses both caches; the *warm* region fits L2 but not L1; the *hot*
    region fits L1. Setting the class probabilities to

        p_cold = l2_mpki / (1000 * mf)
        p_warm = (l1_mpki - l2_mpki) / (1000 * mf)

    therefore reproduces the nominal MPKI up to conflict effects, which
    the measurement quantifies.
    """
    mf = profile.mix.memory_fraction
    if mf <= 0:
        raise SimulationError(
            f"profile {profile.name!r} has no memory accesses"
        )
    p_cold = profile.l2_mpki / 1000.0 / mf
    p_warm = (profile.l1_mpki - profile.l2_mpki) / 1000.0 / mf
    if p_cold + p_warm > 0.95:
        raise SimulationError(
            f"profile {profile.name!r}: miss rates too high for its "
            f"memory fraction ({p_cold + p_warm:.2f} of accesses miss)"
        )
    line = hierarchy.line_bytes
    # Hot set: half the L1; warm set: a quarter of the shared L2 (one
    # thread's share-ish). Both comfortably resident.
    hot_lines = max(hierarchy.l1_size_bytes // (2 * line), 8)
    warm_lines = max(hierarchy.l2_total_bytes // (4 * line), 64)
    return SyntheticAddressStream(
        hot_lines=int(hot_lines),
        warm_lines=int(warm_lines),
        p_hot=1.0 - p_cold - p_warm,
        p_warm=p_warm,
        line_bytes=line,
        seed=seed,
    )


@dataclass(frozen=True)
class MeasuredMpki:
    """Outcome of an address-accurate measurement."""

    profile: str
    instructions: int
    accesses: int
    l1_mpki: float
    l2_mpki: float

    def relative_error(self, nominal_l1: float, nominal_l2: float
                       ) -> tuple[float, float]:
        """(L1, L2) relative error vs the nominal profile values."""
        e1 = abs(self.l1_mpki - nominal_l1) / max(nominal_l1, 1e-9)
        e2 = abs(self.l2_mpki - nominal_l2) / max(nominal_l2, 1e-9)
        return e1, e2


def measure_mpki(profile: WorkloadProfile, *,
                 n_instructions: int = 200_000,
                 hierarchy: CacheHierarchyTiming = DEFAULT_HIERARCHY,
                 seed: int = 0) -> MeasuredMpki:
    """Run a profile's synthetic stream through real caches.

    A private L1 (Table 1 sizes) backed by one thread's slice of the
    shared L2; returns the measured misses per kilo-instruction at both
    levels.
    """
    if n_instructions <= 0:
        raise SimulationError("need a positive instruction budget")
    stream = stream_for_profile(profile, hierarchy=hierarchy, seed=seed)
    l1 = SetAssociativeCache(hierarchy.l1_size_bytes,
                             line_bytes=hierarchy.line_bytes,
                             associativity=8, name="L1D")
    l2 = SetAssociativeCache(hierarchy.l2_total_bytes // 2,
                             line_bytes=hierarchy.line_bytes,
                             associativity=hierarchy.l2_associativity,
                             name="L2")
    # Prime the resident working sets so cold-start (compulsory) misses
    # of the hot/warm pools do not pollute the steady-state measurement
    # — the nominal MPKI describe steady-state behaviour.
    line = hierarchy.line_bytes
    for i in range(stream.hot_lines):
        a = i * line
        l1.access(a)
        l2.access(a)
    for i in range(stream.warm_lines):
        a = (stream.hot_lines + i) * line
        l2.access(a)
    n_accesses = int(n_instructions * profile.mix.memory_fraction)
    addresses = stream.next_addresses(n_accesses)
    l1_misses = 0
    l2_misses = 0
    for a in addresses:
        if not l1.access(int(a)):
            l1_misses += 1
            if not l2.access(int(a)):
                l2_misses += 1
    k = n_instructions / 1000.0
    return MeasuredMpki(
        profile=profile.name,
        instructions=n_instructions,
        accesses=n_accesses,
        l1_mpki=l1_misses / k,
        l2_mpki=l2_misses / k,
    )
