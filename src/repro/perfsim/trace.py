"""Execution tracing for the full-system simulator (extension).

Wraps :class:`~repro.perfsim.simulator.FullSystemSimulator` with a
recording layer: per-thread timeline events (compute segments, memory
stalls, barrier waits) that can be queried, summarized per category, or
rendered as a text Gantt chart — the "what is my simulation doing"
tooling a gem5 substitute owes its users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .simulator import FullSystemSimulator, SimulationResult
from .system import SystemConfig
from .workload import WorkloadProfile

EVENT_KINDS = ("compute", "stall", "barrier")


@dataclass(frozen=True)
class TraceEvent:
    """One per-thread interval."""

    thread: int
    kind: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Interval length."""
        return self.end_s - self.start_s


@dataclass
class ExecutionTrace:
    """Recorded timeline of one simulation."""

    threads: int
    events: list[TraceEvent] = field(default_factory=list)

    def of_thread(self, thread: int) -> list[TraceEvent]:
        """Events of one thread, time-ordered."""
        return sorted((e for e in self.events if e.thread == thread),
                      key=lambda e: e.start_s)

    def time_by_kind(self, thread: int | None = None) -> dict[str, float]:
        """Aggregate seconds per event kind (one thread or all)."""
        out = {k: 0.0 for k in EVENT_KINDS}
        for e in self.events:
            if thread is None or e.thread == thread:
                out[e.kind] += e.duration_s
        return out

    def end_s(self) -> float:
        """Last event end."""
        return max((e.end_s for e in self.events), default=0.0)

    def gantt(self, *, width: int = 72, max_threads: int = 8) -> str:
        """Text Gantt chart: one row per thread, c/s/b per time bucket.

        Each column is a time bucket labelled by the kind that consumed
        most of it ('c' compute, 's' stall, 'b' barrier, '.' idle).
        """
        horizon = self.end_s()
        if horizon <= 0:
            return "(empty trace)"
        dt = horizon / width
        rows = []
        for t in range(min(self.threads, max_threads)):
            buckets = [{k: 0.0 for k in EVENT_KINDS}
                       for _ in range(width)]
            for e in self.of_thread(t):
                b0 = min(int(e.start_s / dt), width - 1)
                b1 = min(int(e.end_s / dt), width - 1)
                for b in range(b0, b1 + 1):
                    lo = max(e.start_s, b * dt)
                    hi = min(e.end_s, (b + 1) * dt)
                    if hi > lo:
                        buckets[b][e.kind] += hi - lo
            line = "".join(
                "." if all(v == 0 for v in bucket.values())
                else max(bucket, key=bucket.get)[0]
                for bucket in buckets
            )
            rows.append(f"t{t:02d} |{line}|")
        return "\n".join(rows)


class TracingSimulator(FullSystemSimulator):
    """A :class:`FullSystemSimulator` that records its timeline."""

    def __init__(self, config: SystemConfig, profile: WorkloadProfile,
                 f_hz: float, **kwargs) -> None:
        super().__init__(config, profile, f_hz, **kwargs)
        self.trace = ExecutionTrace(threads=self.threads)
        self._barrier_enter: dict[int, float] = {}

    # -- hooks into the parent's progression ---------------------------------

    def _resume(self, thread: int) -> None:
        if thread in self._barrier_enter:
            start = self._barrier_enter.pop(thread)
            if self._queue.now > start:
                self.trace.events.append(TraceEvent(
                    thread, "barrier", start, self._queue.now))
        start = self._queue.now
        before_compute = self._cores[thread].state.compute_s
        before_stall = self._cores[thread].state.stall_s
        super()._resume(thread)
        core = self._cores[thread]
        d_compute = core.state.compute_s - before_compute
        d_stall = core.state.stall_s - before_stall
        if d_compute > 0:
            self.trace.events.append(TraceEvent(
                thread, "compute", start, start + d_compute))
        if d_stall > 0:
            self.trace.events.append(TraceEvent(
                thread, "stall", start + d_compute,
                start + d_compute + d_stall))

    def _at_barrier(self, thread: int) -> None:
        self._barrier_enter[thread] = self._queue.now
        super()._at_barrier(thread)


def traced_run(benchmark: str, config: SystemConfig, f_hz: float, *,
               threads: int | None = None, seed: int = 0,
               instructions_per_thread: int | None = None
               ) -> tuple[SimulationResult, ExecutionTrace]:
    """Run one NPB program with tracing; returns (result, trace)."""
    from .npb import get_profile
    sim = TracingSimulator(config, get_profile(benchmark), f_hz,
                           threads=threads, seed=seed,
                           instructions_per_thread=instructions_per_thread)
    result = sim.run()
    if not sim.trace.events:
        raise SimulationError("trace recorded no events")
    return result, sim.trace
