"""Analytic (closed-form) performance tier.

For the paper's experiment — identical binaries, identical memory
system, only the clock differs — execution time decomposes per
instruction into a clocked part and a fixed-time part:

    t_instr(f) = (CPI_base + C_onchip) / f  +  t_dram_fixed

where C_onchip collects L2-hit and NoC cycles (which scale with f) and
t_dram_fixed collects DRAM nanoseconds per instruction (which do not).
A barrier-imbalance factor accounts for the slowest-thread effect.

The tier evaluates in microseconds, which lets the benches sweep 9
programs x 5 coolants x many stack heights instantly; the ablation
bench cross-checks it against the event-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .cache import CacheHierarchyTiming, DEFAULT_HIERARCHY
from .memory import DEFAULT_DRAM, DramParams
from .noc.network import expected_noc_cycles
from .noc.router import DEFAULT_ROUTER, RouterParams
from .noc.topology import MeshTopology
from .npb import get_profile
from .system import SystemConfig
from .workload import WorkloadProfile


@dataclass(frozen=True)
class AnalyticBreakdown:
    """Per-instruction time decomposition at one frequency."""

    f_hz: float
    clocked_cycles: float
    fixed_seconds: float
    imbalance_factor: float

    @property
    def seconds_per_instruction(self) -> float:
        """Average time per instruction including imbalance."""
        return ((self.clocked_cycles / self.f_hz + self.fixed_seconds)
                * self.imbalance_factor)

    @property
    def memory_bound_fraction(self) -> float:
        """Share of time in the fixed (DRAM) component."""
        total = self.clocked_cycles / self.f_hz + self.fixed_seconds
        return self.fixed_seconds / total if total > 0 else 0.0


class AnalyticModel:
    """Closed-form execution-time model for one system configuration.

    Args:
        config: hardware configuration (for mesh size / tier count —
            deeper stacks have longer average NoC paths).
        threads: thread count (enters through the imbalance factor:
            the expected maximum of N unit-mean log-normals).
        noc2_cycles / noc3_cycles: per-transaction NoC cycle overrides.
            The degradation ladder's flit-level rung supplies latencies
            measured on the wormhole microsimulator here; by default
            both come from the packet formula
            (:func:`~repro.perfsim.noc.network.expected_noc_cycles`).
    """

    def __init__(self, config: SystemConfig, *,
                 threads: int | None = None,
                 noc2_cycles: float | None = None,
                 noc3_cycles: float | None = None) -> None:
        self.config = config
        self.threads = threads if threads is not None else config.total_cores
        if self.threads < 1:
            raise SimulationError("need at least one thread")
        topo = MeshTopology(config.mesh_width, config.mesh_height,
                            config.n_chips)
        self._noc2 = (float(noc2_cycles) if noc2_cycles is not None
                      else expected_noc_cycles(topo, config.router, legs=2))
        self._noc3 = (float(noc3_cycles) if noc3_cycles is not None
                      else expected_noc_cycles(topo, config.router, legs=3))
        self._hier: CacheHierarchyTiming = config.hierarchy
        self._dram: DramParams = config.dram

    def _imbalance_factor(self, profile: WorkloadProfile) -> float:
        """Expected slowest-of-N inflation for per-barrier work.

        For N unit-mean log-normals with coefficient of variation cv,
        E[max] ~= exp(sigma * Phi^{-1}(N/(N+1)) - sigma^2/2); we use the
        standard extreme-value approximation.
        """
        cv = profile.imbalance_cv
        if cv <= 0 or self.threads == 1:
            return 1.0
        from scipy.stats import norm
        sigma = float(np.sqrt(np.log(1.0 + cv * cv)))
        q = norm.ppf(self.threads / (self.threads + 1.0))
        return float(np.exp(sigma * q - 0.5 * sigma * sigma))

    def breakdown(self, profile: WorkloadProfile, f_hz: float
                  ) -> AnalyticBreakdown:
        """Decompose per-instruction time at a clock frequency."""
        if f_hz <= 0:
            raise SimulationError(f"frequency must be positive, got {f_hz}")
        l1_only = (profile.l1_mpki - profile.l2_mpki) / 1000.0
        l2_miss = profile.l2_mpki / 1000.0
        shared = l2_miss * profile.sharing_fraction
        clocked = (
            profile.base_cpi
            + l1_only * (self._hier.l2_cycles + self._noc2)
            + l2_miss * (self._hier.l2_cycles + self._noc2)
            + shared * (self._noc3 - self._noc2)
        )
        # DRAM idle latency plus expected queueing. Controller
        # utilization is computed self-consistently from the stall-
        # inclusive instruction time (an optimistic f/CPI rate would
        # saturate the queue and make memory-bound programs *anti-scale*
        # with frequency, which neither gem5 nor hardware shows).
        fixed = l2_miss * self._dram.idle_latency_s
        t0 = clocked / f_hz + fixed
        fixed += l2_miss * self._queue_wait_s(profile, t0)
        return AnalyticBreakdown(
            f_hz=f_hz,
            clocked_cycles=clocked,
            fixed_seconds=fixed,
            imbalance_factor=self._imbalance_factor(profile),
        )

    def _queue_wait_s(self, profile: WorkloadProfile,
                      t_instr_s: float) -> float:
        """Expected M/D/1 wait at a memory controller.

        Args:
            t_instr_s: stall-inclusive per-instruction time used to
                derive the aggregate request rate.
        """
        if profile.l2_mpki <= 0 or t_instr_s <= 0:
            return 0.0
        per_thread_rate = profile.l2_mpki / 1000.0 / t_instr_s
        req_rate = (self.threads * per_thread_rate
                    / self._dram.num_controllers)
        s = self._dram.service_time_s
        rho = min(req_rate * s, 0.90)                 # stability clamp
        return rho * s / (2.0 * (1.0 - rho))

    def execution_time_s(self, profile: WorkloadProfile, f_hz: float
                         ) -> float:
        """Parallel execution time of the profile's instruction budget."""
        b = self.breakdown(profile, f_hz)
        return profile.instructions_per_thread * b.seconds_per_instruction

    def relative_time(self, profile: WorkloadProfile, f_hz: float,
                      f_ref_hz: float) -> float:
        """T(f) / T(f_ref) — the paper's Figs. 10-13 bar heights."""
        return (self.execution_time_s(profile, f_hz)
                / self.execution_time_s(profile, f_ref_hz))


def npb_relative_times(config: SystemConfig, f_hz: float, f_ref_hz: float,
                       *, threads: int | None = None) -> dict[str, float]:
    """Relative NPB execution times at f vs a reference frequency."""
    from .npb import NPB_ORDER
    model = AnalyticModel(config, threads=threads)
    return {
        name: model.relative_time(get_profile(name), f_hz, f_ref_hz)
        for name in NPB_ORDER
    }
