"""Tests for chip specs, McPAT-like power split, and RAPL emulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PowerModelError
from repro.power import (
    CMP_SPLIT,
    HIGH_FREQUENCY_CMP,
    LOW_POWER_CMP,
    XEON_E5_2667V4,
    XEON_PHI_7290,
    ComponentSplit,
    RaplEmulator,
    block_power,
    chip_names,
    get_chip,
    model_profile,
    peak_power_density_w_m2,
    power_summary,
)
from repro.units import ghz


class TestChipSpecs:
    def test_low_power_anchor(self):
        # Table 1: 47.2 W at 2.0 GHz.
        assert LOW_POWER_CMP.total_power_w(ghz(2.0)) == pytest.approx(47.2)

    def test_high_frequency_anchor(self):
        # Table 1: 56.8 W at 3.6 GHz.
        assert HIGH_FREQUENCY_CMP.total_power_w(ghz(3.6)) == pytest.approx(
            56.8)

    def test_power_monotone_in_frequency(self):
        freqs = LOW_POWER_CMP.ladder.frequencies()
        powers = [LOW_POWER_CMP.total_power_w(float(f)) for f in freqs]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_hf_floor_draws_less_than_lp_floor(self):
        # The paper's Section 3.2 observation: the high-frequency chip's
        # broader VFS range gives it a lower minimum power mode, which
        # is why it supports taller stacks at low clocks.
        hf_floor = HIGH_FREQUENCY_CMP.total_power_w(ghz(1.2))
        lp_floor = LOW_POWER_CMP.total_power_w(ghz(1.0))
        assert hf_floor < lp_floor

    def test_dynamic_static_sum(self):
        for f in (ghz(1.4), ghz(2.0)):
            d, s = LOW_POWER_CMP.dynamic_static_w(f)
            assert d + s == pytest.approx(LOW_POWER_CMP.total_power_w(f))

    def test_static_fraction_at_max(self):
        d, s = LOW_POWER_CMP.dynamic_static_w(ghz(2.0))
        assert s / (d + s) == pytest.approx(0.30)

    def test_e5_threshold_is_78(self):
        assert XEON_E5_2667V4.threshold_c == 78.0

    def test_phi_has_72_cores(self):
        assert XEON_PHI_7290.num_cores == 72

    def test_get_chip_roundtrip(self):
        for name in chip_names():
            assert get_chip(name).name == name

    def test_get_chip_unknown(self):
        with pytest.raises(ConfigurationError):
            get_chip("pentium4")


class TestComponentSplit:
    def test_fractions_sum_validated(self):
        with pytest.raises(PowerModelError, match="sum to 1"):
            ComponentSplit(dynamic_fraction={"core": 0.5},
                           static_fraction={"core": 1.0})

    def test_mismatched_kinds_rejected(self):
        with pytest.raises(PowerModelError, match="same kinds"):
            ComponentSplit(dynamic_fraction={"core": 1.0},
                           static_fraction={"l2": 1.0})

    def test_block_power_share(self):
        p = CMP_SPLIT.block_power("core", dynamic_w=100.0, static_w=0.0,
                                  share_of_kind=0.25)
        assert p == pytest.approx(0.25 * CMP_SPLIT.dynamic_fraction["core"]
                                  * 100.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(PowerModelError, match="not covered"):
            CMP_SPLIT.block_power("gpu", 1.0, 1.0, 1.0)

    def test_bad_share_rejected(self):
        with pytest.raises(PowerModelError):
            CMP_SPLIT.block_power("core", 1.0, 1.0, 1.5)


class TestBlockPower:
    def test_total_conserved(self):
        for chip in (LOW_POWER_CMP, HIGH_FREQUENCY_CMP, XEON_E5_2667V4,
                     XEON_PHI_7290):
            f = chip.ladder.f_max_hz
            per_block = block_power(chip, f)
            assert sum(per_block.values()) == pytest.approx(
                chip.total_power_w(f), rel=1e-9)

    def test_total_conserved_at_floor(self):
        chip = LOW_POWER_CMP
        per_block = block_power(chip, chip.ladder.f_min_hz)
        assert sum(per_block.values()) == pytest.approx(
            chip.total_power_w(chip.ladder.f_min_hz), rel=1e-9)

    def test_off_ladder_frequency_rejected(self):
        with pytest.raises(PowerModelError, match="ladder"):
            block_power(LOW_POWER_CMP, ghz(1.55))

    def test_core_density_exceeds_l2(self):
        chip = HIGH_FREQUENCY_CMP
        fp = chip.floorplan()
        per_block = block_power(chip, ghz(3.6), fp)
        def density(kind):
            blocks = fp.blocks_of_kind(kind)
            return (sum(per_block[b.name] for b in blocks)
                    / sum(b.rect.area for b in blocks))
        # The Fig. 9 hotspot structure: cores are the dense blocks.
        assert density("core") > 1.5 * density("l2")

    def test_rotated_floorplan_same_total(self):
        from repro.floorplan import rotate_180
        chip = LOW_POWER_CMP
        fp = rotate_180(chip.floorplan())
        per_block = block_power(chip, ghz(2.0), fp)
        assert sum(per_block.values()) == pytest.approx(47.2, rel=1e-9)

    def test_power_summary_covers_kinds(self):
        s = power_summary(LOW_POWER_CMP, ghz(2.0))
        assert set(s) == {"core", "l2", "router"}
        assert sum(s.values()) == pytest.approx(47.2, rel=1e-9)

    def test_peak_density_positive_and_scales(self):
        lo = peak_power_density_w_m2(HIGH_FREQUENCY_CMP, ghz(1.2))
        hi = peak_power_density_w_m2(HIGH_FREQUENCY_CMP, ghz(3.6))
        assert 0 < lo < hi


class TestRapl:
    def test_profile_matches_model_with_zero_noise(self):
        emu = RaplEmulator(LOW_POWER_CMP, noise_sigma=0.0, seed=1)
        prof = emu.measure_profile()
        model = model_profile(LOW_POWER_CMP)
        np.testing.assert_allclose(prof.powers(), model.powers(), rtol=1e-12)

    def test_reproducible_given_seed(self):
        a = RaplEmulator(LOW_POWER_CMP, seed=42).measure_profile()
        b = RaplEmulator(LOW_POWER_CMP, seed=42).measure_profile()
        np.testing.assert_allclose(a.powers(), b.powers())

    def test_different_seeds_differ(self):
        a = RaplEmulator(LOW_POWER_CMP, seed=1).measure_profile()
        b = RaplEmulator(LOW_POWER_CMP, seed=2).measure_profile()
        assert not np.allclose(a.powers(), b.powers())

    def test_noise_magnitude(self):
        emu = RaplEmulator(LOW_POWER_CMP, noise_sigma=0.02, seed=3)
        prof = emu.measure_profile()
        model = model_profile(LOW_POWER_CMP)
        rel = np.abs(prof.powers() / model.powers() - 1.0)
        assert rel.max() < 0.10

    def test_relative_curve_normalized(self):
        f_rel, p_rel = model_profile(HIGH_FREQUENCY_CMP).relative()
        assert f_rel[-1] == pytest.approx(1.0)
        assert p_rel[-1] == pytest.approx(1.0)
        assert f_rel[0] == pytest.approx(1.2 / 3.6)

    def test_fig6_shape_low_frequency_power_small(self):
        # Fig. 6: at the ladder floor, relative power is well below the
        # relative frequency (V^2 f scaling).
        f_rel, p_rel = model_profile(HIGH_FREQUENCY_CMP).relative()
        assert p_rel[0] < f_rel[0]

    def test_power_at_missing_frequency(self):
        prof = model_profile(LOW_POWER_CMP)
        with pytest.raises(PowerModelError, match="not sampled"):
            prof.power_at(ghz(1.55))

    def test_energy_accumulation(self):
        emu = RaplEmulator(LOW_POWER_CMP, noise_sigma=0.0)
        s = emu.measure_step(ghz(2.0), duration_s=10.0)
        assert s.energy_j == pytest.approx(472.0)
