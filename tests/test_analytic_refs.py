"""Tests for the closed-form thermal references and solver agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan.geometry import Rect
from repro.thermal import (
    COPPER,
    FinArray,
    SILICON,
    SlabLayer,
    TIM,
    series_slab_resistance,
    spreading_resistance,
)
from repro.thermal.layers import Boundary, GridLayer, Interface
from repro.thermal.network import ThermalNetwork


class TestSeriesSlab:
    def test_single_layer(self):
        r = series_slab_resistance(
            (SlabLayer(1e-3, SILICON),), (), area_m2=1e-4)
        assert r == pytest.approx(1e-3 / SILICON.conductivity_w_mk / 1e-4)

    def test_interfaces_add(self):
        base = series_slab_resistance(
            (SlabLayer(1e-3, SILICON), SlabLayer(1e-3, COPPER)),
            (0.0,), area_m2=1e-4)
        with_tim = series_slab_resistance(
            (SlabLayer(1e-3, SILICON), SlabLayer(1e-3, COPPER)),
            (2e-5,), area_m2=1e-4)
        assert with_tim == pytest.approx(base + 2e-5 / 1e-4)

    def test_convective_tail(self):
        r = series_slab_resistance((SlabLayer(1e-3, COPPER),), (),
                                   area_m2=1e-2, h_w_m2k=100.0)
        assert r == pytest.approx(
            (1e-3 / 400.0 + 1.0 / 100.0) / 1e-2)

    def test_interface_count_validated(self):
        with pytest.raises(ThermalModelError):
            series_slab_resistance((SlabLayer(1e-3, SILICON),), (1e-5,),
                                   area_m2=1e-4)

    def test_grid_solver_matches_series_formula(self):
        """Uniform flux through a 2-layer stack: grid == closed form."""
        area = 0.01 ** 2
        a = GridLayer("a", Rect(0, 0, 0.01, 0.01), 5e-4, SILICON, 4, 4)
        b = GridLayer("b", Rect(0, 0, 0.01, 0.01), 1e-3, COPPER, 4, 4)
        h = 300.0
        net = ThermalNetwork([a, b], [Interface("a", "b", 2e-5)],
                             [Boundary("b", "top", h)])
        p = 6.0
        res = net.solve({"a": np.full((4, 4), p / 16.0)})
        # Centre-of-layer-a temperature: half of a's own resistance plus
        # the interface, all of b, and the tail.
        r = series_slab_resistance(
            (SlabLayer(2.5e-4, SILICON), SlabLayer(1e-3, COPPER)),
            (2e-5,), area_m2=area, h_w_m2k=h)
        np.testing.assert_allclose(res.layer("a"), 25.0 + p * r,
                                   rtol=1e-9)


class TestSpreading:
    def test_positive_and_scale(self):
        r = spreading_resistance(1.69e-4, 36e-4, 1e-3, 400.0, 2000.0)
        assert 0.01 < r < 1.0

    def test_smaller_source_higher_resistance(self):
        big = spreading_resistance(4e-4, 36e-4, 1e-3, 400.0, 2000.0)
        small = spreading_resistance(1e-4, 36e-4, 1e-3, 400.0, 2000.0)
        assert small > big

    def test_thicker_plate_spreads_better(self):
        thin = spreading_resistance(1.69e-4, 36e-4, 5e-4, 400.0, 2000.0)
        thick = spreading_resistance(1.69e-4, 36e-4, 3e-3, 400.0, 2000.0)
        assert thick < thin

    def test_invalid_geometry(self):
        with pytest.raises(ThermalModelError):
            spreading_resistance(1e-3, 1e-4, 1e-3, 400.0, 100.0)

    def test_grid_solver_shows_constriction(self):
        """A point source on a plate runs hotter than uniform power —
        the constriction the closed form estimates."""
        plate = GridLayer("p", Rect(0, 0, 0.06, 0.06), 1e-3, COPPER,
                          12, 12)
        net = ThermalNetwork([plate], [],
                             [Boundary("p", "top", 2000.0)])
        p = 50.0
        uniform = net.solve({"p": np.full((12, 12), p / 144)})
        point = np.zeros((12, 12))
        point[5:7, 5:7] = p / 4
        concentrated = net.solve({"p": point})
        assert concentrated.max_of("p") > uniform.max_of("p") + 1.0


class TestFinArray:
    def test_efficiency_bounds(self):
        fins = FinArray()
        for h in (14.0, 160.0, 800.0):
            eta = fins.fin_efficiency(h)
            assert 0.0 < eta <= 1.0

    def test_efficiency_falls_with_h(self):
        fins = FinArray()
        assert fins.fin_efficiency(800.0) < fins.fin_efficiency(14.0)

    def test_air_fins_nearly_ideal(self):
        # At h = 14 the fin Biot number is tiny: eta ~ 1. (Which is why
        # the calibrated air_fin_utilization is a *flow* bypass factor,
        # not a fin-conduction effect.)
        assert FinArray().fin_efficiency(14.0) > 0.97

    def test_resistance_ordering_matches_coolants(self):
        fins = FinArray()
        rs = [fins.resistance(h) for h in (14.0, 160.0, 180.0, 800.0)]
        assert all(a > b for a, b in zip(rs, rs[1:]))

    def test_water_resistance_scale(self):
        # Even with imperfect fins, water turns the Table 2 array into
        # a sub-0.01 K/W exchanger.
        assert FinArray().resistance(800.0) < 0.01

    def test_invalid_h(self):
        with pytest.raises(ThermalModelError):
            FinArray().fin_efficiency(0.0)
