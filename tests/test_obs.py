"""Tests for the observability layer (tracer, metrics, manifests)."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    build_manifest,
    config_hash,
    get_registry,
    get_tracer,
    log_event,
    log_spaced_edges,
    set_verbosity,
    span,
    spans_from_chrome,
    validate_manifest,
)


# -- tracer ------------------------------------------------------------------

class TestTracer:
    def test_nesting_records_parent(self):
        tr = Tracer(enabled=True)
        with tr.span("outer") as outer:
            with tr.span("inner"):
                pass
        spans = {s.name: s for s in tr.spans}
        assert spans["inner"].parent_id == outer.span.span_id
        assert spans["outer"].parent_id is None

    def test_durations_monotonic_and_contained(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.002)
        spans = {s.name: s for s in tr.spans}
        assert spans["inner"].duration_s > 0
        assert spans["outer"].duration_s >= spans["inner"].duration_s
        assert spans["outer"].start_ns <= spans["inner"].start_ns
        assert spans["inner"].end_ns <= spans["outer"].end_ns

    def test_attrs_at_open_and_via_set(self):
        tr = Tracer(enabled=True)
        with tr.span("s", cooling="water") as sp:
            sp.set("max_temp_c", 71.5)
        (s,) = tr.spans
        assert s.attrs == {"cooling": "water", "max_temp_c": 71.5}

    def test_exception_marks_span_and_propagates(self):
        tr = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        (s,) = tr.spans
        assert s.attrs["error"] == "ValueError"
        assert s.end_ns is not None

    def test_thread_parent_attribution(self):
        """Each thread keeps its own span stack: workers' children
        attach to the worker's root, never to another thread's span."""
        tr = Tracer(enabled=True)
        n = 4
        barrier = threading.Barrier(n)

        def worker(i: int) -> None:
            with tr.span(f"root-{i}"):
                barrier.wait()          # all roots open simultaneously
                with tr.span(f"child-{i}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in tr.spans}
        assert len(spans) == 2 * n
        for i in range(n):
            root, child = spans[f"root-{i}"], spans[f"child-{i}"]
            assert root.parent_id is None
            assert child.parent_id == root.span_id
            assert child.thread_id == root.thread_id

    def test_span_ids_unique_under_threads(self):
        tr = Tracer(enabled=True)

        def worker() -> None:
            for _ in range(50):
                with tr.span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tr.spans]
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_disabled_returns_null_singleton(self):
        tr = Tracer(enabled=False)
        assert tr.span("x", a=1) is NULL_SPAN
        with tr.span("x") as sp:
            sp.set("k", "v")        # must be a silent no-op
        assert tr.spans == ()

    def test_global_helper_respects_enabled_flag(self):
        tracer = get_tracer()
        assert not tracer.enabled   # disabled by default
        assert span("x") is NULL_SPAN
        tracer.enable()
        try:
            with span("y"):
                pass
            assert any(s.name == "y" for s in tracer.spans)
        finally:
            tracer.disable()
            tracer.reset()

    def test_reset_restarts_ids(self):
        import os

        from repro.obs import split_span_id
        tr = Tracer(enabled=True)
        with tr.span("a"):
            pass
        tr.reset()
        with tr.span("b"):
            pass
        (s,) = tr.spans
        # Ids are pid-namespaced; reset restarts the *local* counter.
        pid, local = split_span_id(s.span_id)
        assert local == 1
        assert pid == os.getpid()
        assert s.pid == os.getpid()


class TestTraceExport:
    def _traced(self) -> Tracer:
        tr = Tracer(enabled=True)
        with tr.span("outer", cooling="water"):
            with tr.span("inner", step=3):
                pass
        return tr

    def test_jsonl_one_object_per_line(self):
        tr = self._traced()
        buf = io.StringIO()
        tr.write_jsonl(buf)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"outer", "inner"}
        assert all(r["duration_s"] >= 0 for r in records)

    def test_chrome_trace_shape(self):
        doc = self._traced().chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0
            assert isinstance(ev["ts"], float)
            assert "span_id" in ev["args"]

    def test_chrome_roundtrip_preserves_tree_and_timing(self):
        """Export -> JSON text -> reimport reconstructs names, the
        parent/child tree, and timings to microsecond rounding."""
        tr = self._traced()
        doc = json.loads(json.dumps(tr.chrome_trace()))
        back = {r["name"]: r for r in spans_from_chrome(doc)}
        orig = {s.name: s for s in tr.spans}
        assert set(back) == set(orig)
        for name, s in orig.items():
            r = back[name]
            assert r["span_id"] == s.span_id
            assert r["parent_id"] == s.parent_id
            assert r["attrs"] == {k: v for k, v in s.attrs.items()}
            assert abs(r["start_ns"] - s.start_ns) <= 1_000
            assert abs(r["end_ns"] - s.end_ns) <= 2_000

    def test_chrome_trace_is_loadable_json_file(self, tmp_path):
        path = tmp_path / "t.json"
        self._traced().write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2


# -- metrics -----------------------------------------------------------------

class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2)
        reg.gauge("g").set(7.5)
        assert reg.gauge("g").value == 7.5

    def test_name_must_keep_one_type(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="Counter"):
            reg.gauge("x")

    def test_log_spaced_edges(self):
        edges = log_spaced_edges(-6, 2, 4)
        assert len(edges) == 33
        assert edges[0] == pytest.approx(1e-6)
        assert edges[-1] == pytest.approx(1e2)
        # exactly log-spaced: constant ratio of 10^(1/4)
        ratios = [b / a for a, b in zip(edges, edges[1:])]
        assert all(r == pytest.approx(10 ** 0.25) for r in ratios)

    def test_histogram_bucket_edges_upper_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 1.5, 10.0, 10.1, 100.0, 1000.0):
            h.observe(v)
        # bucket i holds edges[i-1] < v <= edges[i]; last is overflow
        assert h.bucket_counts == (2, 2, 2, 1)
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 10.0 + 10.1
                                      + 100.0 + 1000.0)
        snap = h.snapshot()
        assert snap["min"] == 0.5 and snap["max"] == 1000.0

    def test_histogram_default_edges_cover_timings(self):
        reg = MetricsRegistry()
        h = reg.histogram("t")
        assert len(h.bucket_counts) == len(h.edges) + 1
        h.observe(1e-9)     # below the lowest edge -> first bucket
        h.observe(1e9)      # beyond the highest edge -> overflow
        assert h.bucket_counts[0] == 1
        assert h.bucket_counts[-1] == 1

    def test_snapshot_groups_by_type(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["counters"]["c"] == 3

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()

        def worker() -> None:
            for _ in range(1000):
                reg.counter("n").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 8000


# -- structured logging ------------------------------------------------------

class TestSlog:
    def test_log_event_json_lines(self):
        buf = io.StringIO()
        set_verbosity(1, stream=buf)
        try:
            log_event("retry", attempt=2, error="TransientSolverError")
            log_event("span_detail", level=2, name="x")   # above level
        finally:
            set_verbosity(0)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["event"] == "retry"
        assert rec["attempt"] == 2

    def test_silent_by_default(self):
        buf = io.StringIO()
        set_verbosity(0, stream=buf)
        log_event("anything", x=1)
        assert buf.getvalue() == ""


# -- manifests ---------------------------------------------------------------

class TestManifest:
    CONFIG = {"points": ["freq/low-power-cmp/n1/water"], "seedless": False}

    def test_deterministic_for_fixed_inputs(self):
        a = build_manifest(name="campaign", config=dict(self.CONFIG),
                           seed=7, metrics={"counters": {"x": 1}},
                           wall_time_s=1.25, timestamp="2026-08-06T00:00:00")
        b = build_manifest(name="campaign", config=dict(self.CONFIG),
                           seed=7, metrics={"counters": {"x": 1}},
                           wall_time_s=1.25, timestamp="2026-08-06T00:00:00")
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_config_hash_ignores_key_order(self):
        assert (config_hash({"a": 1, "b": 2})
                == config_hash({"b": 2, "a": 1}))
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_validates_and_roundtrips(self):
        doc = build_manifest(name="x", config={"k": 1}, seed=0)
        validate_manifest(doc)
        validate_manifest(json.loads(json.dumps(doc)))

    def test_missing_field_rejected(self):
        doc = build_manifest(name="x", config={"k": 1})
        del doc["config_hash"]
        with pytest.raises(ConfigurationError, match="config_hash"):
            validate_manifest(doc)

    def test_tampered_config_rejected(self):
        doc = build_manifest(name="x", config={"k": 1})
        doc["config"]["k"] = 2
        with pytest.raises(ConfigurationError, match="config_hash"):
            validate_manifest(doc)

    def test_unknown_field_rejected(self):
        doc = build_manifest(name="x", config={})
        doc["surprise"] = True
        with pytest.raises(ConfigurationError, match="surprise"):
            validate_manifest(doc)

    def test_unserializable_config_rejected(self):
        with pytest.raises(ConfigurationError, match="serializable"):
            config_hash({"bad": {1, 2}})


# -- disabled-path overhead --------------------------------------------------

class TestOverhead:
    def test_disabled_tracer_is_near_noop_for_freq_run(self):
        """Acceptance: with tracing off, instrumentation adds <5% to a
        small freq run. Measured as (per-disabled-span cost) x (spans
        such a run actually opens) against the run's wall time."""
        from repro.cooling import get_cooling
        from repro.core.freqopt import max_frequency
        from repro.power import get_chip
        from repro.stack import StackConfig
        from repro.thermal import ThermalModel, model_cache, response_cache

        tracer = get_tracer()
        assert not tracer.enabled

        def freq_run() -> None:
            # Cold caches every run: a warm superposition-kernel run
            # answers the whole ladder from the process-global operator
            # cache (sub-ms, zero spans), and the timed run, the traced
            # run, and the 5% bar must all measure the same work.
            model_cache().clear()
            response_cache().clear()
            model = ThermalModel(
                StackConfig(chip=get_chip("low-power-cmp"), n_chips=2),
                get_cooling("water"))
            max_frequency(model)

        # Wall time of the uninstrumented-equivalent (tracer off) run.
        t0 = time.perf_counter()
        freq_run()
        run_s = time.perf_counter() - t0

        # How many spans the same run opens when tracing is on.
        tracer.enable()
        try:
            tracer.reset()
            freq_run()
            n_spans = len(tracer.spans)
        finally:
            tracer.disable()
            tracer.reset()
        assert n_spans > 0

        # Per-call cost of the disabled fast path.
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with span("overhead.probe", a=1):
                pass
        per_call_s = (time.perf_counter() - t0) / n

        overhead = per_call_s * n_spans
        assert overhead < 0.05 * run_s, (
            f"disabled tracer would add {overhead * 1e3:.3f} ms over "
            f"{n_spans} spans to a {run_s * 1e3:.1f} ms freq run")
