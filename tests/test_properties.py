"""Cross-cutting property-based tests (hypothesis).

The invariants that must hold for *any* input, not just the paper's
configurations: conductance-matrix structure, pointwise monotonicity,
conservation under transforms, coherence-transaction well-formedness,
tank monotonicity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan import baseline_16tile, rotate_180
from repro.floorplan.geometry import Rect
from repro.perfsim.coherence import DirectoryModel, TransactionKind
from repro.perfsim.noc.topology import MeshTopology, NodeId
from repro.thermal.layers import Boundary, GridLayer
from repro.thermal.materials import SILICON
from repro.thermal.network import ThermalNetwork


def _network(n=4, h=200.0):
    layer = GridLayer("slab", Rect(0, 0, 0.01, 0.01), 1e-3, SILICON, n, n)
    return ThermalNetwork([layer], [],
                          [Boundary("slab", "top", h_w_m2k=h)])


class TestConductanceMatrix:
    def test_symmetric(self):
        g = _network().conductance_matrix()
        asym = abs(g - g.T).max()
        assert asym < 1e-12

    def test_positive_diagonal(self):
        g = _network().conductance_matrix()
        assert np.all(g.diagonal() > 0)

    def test_diagonally_dominant(self):
        g = _network().conductance_matrix().toarray()
        off = np.abs(g).sum(axis=1) - np.abs(g.diagonal())
        # Boundary conductance makes rows strictly dominant.
        assert np.all(g.diagonal() >= off - 1e-12)

    def test_row_sums_equal_boundary_conductance(self):
        net = _network()
        g = net.conductance_matrix().toarray()
        np.testing.assert_allclose(g.sum(axis=1),
                                   net.boundary_conductances(),
                                   rtol=1e-9, atol=1e-15)

    @given(st.integers(min_value=0, max_value=15),
           st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_pointwise_monotonicity_in_power(self, cell, extra):
        """Adding power anywhere raises temperature everywhere
        (inverse of an M-matrix is non-negative)."""
        net = _network()
        base = np.full((4, 4), 1.0)
        t0 = net.solve({"slab": base}).layer("slab")
        bumped = base.copy()
        bumped[cell // 4, cell % 4] += extra
        t1 = net.solve({"slab": bumped}).layer("slab")
        assert np.all(t1 >= t0 - 1e-12)

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_reciprocity(self, cell):
        """Symmetric G: the rise at j from 1 W at i equals the rise at
        i from 1 W at j."""
        net = _network()
        i, j = cell, (cell + 7) % 16
        pi = np.zeros((4, 4)); pi[i // 4, i % 4] = 1.0
        pj = np.zeros((4, 4)); pj[j // 4, j % 4] = 1.0
        ti = net.solve({"slab": pi}).layer("slab").ravel()
        tj = net.solve({"slab": pj}).layer("slab").ravel()
        assert ti[j] == pytest.approx(tj[i], rel=1e-9)


class TestTransformConservation:
    @given(st.integers(min_value=2, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_rotation_preserves_power_total(self, n):
        fp = baseline_16tile()
        power = {b.name: 0.5 for b in fp.blocks}
        plain = fp.power_map(power, n, n).sum()
        rot = rotate_180(fp).power_map(power, n, n).sum()
        assert rot == pytest.approx(plain, rel=1e-9)

    @given(st.integers(min_value=1, max_value=24),
           st.integers(min_value=1, max_value=24))
    @settings(max_examples=30, deadline=None)
    def test_power_total_grid_independent(self, nx, ny):
        fp = baseline_16tile()
        power = {b.name: 1.25 for b in fp.blocks}
        assert fp.power_map(power, nx, ny).sum() == pytest.approx(
            1.25 * len(fp.blocks), rel=1e-9)


class TestCoherenceProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_transaction_wellformed(self, seed):
        """Every sampled transaction starts at the requester, ends with
        a data response back to it, and legs chain src->dst."""
        d = DirectoryModel(l1_mpki=30.0, l2_mpki=10.0,
                           sharing_fraction=0.4, seed=seed)
        topo = MeshTopology(4, 4, 2)
        requester = NodeId(0, 1, 0)
        home = NodeId(1, 2, 3)
        mem = NodeId(0, 3, 3)
        kind = d.sample_kind()
        owner = (d.sample_owner((NodeId(0, 0, 0), NodeId(1, 3, 0)),
                                requester)
                 if kind is TransactionKind.L2_HIT_FORWARD else None)
        txn = d.build_transaction(kind, requester, home, owner, mem)
        assert txn.legs[0].src == requester
        assert txn.legs[-1].dst == requester
        assert txn.legs[-1].is_data
        assert txn.legs[0].message_class == "request"
        for leg in txn.legs:
            assert topo.contains(leg.src) and topo.contains(leg.dst)

    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40)
    def test_kind_frequencies_match_parameters(self, l2_share, sharing):
        l1 = 50.0
        l2 = l1 * min(l2_share / 50.0, 1.0)
        d = DirectoryModel(l1_mpki=l1, l2_mpki=l2,
                           sharing_fraction=sharing, seed=1)
        kinds = [d.sample_kind() for _ in range(1500)]
        frac_miss = np.mean([k is TransactionKind.L2_MISS for k in kinds])
        assert frac_miss == pytest.approx(l2 / l1, abs=0.06)


class TestTankProperties:
    @given(st.floats(min_value=1e-5, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_water_temp_monotone(self, flow, boards):
        from repro.cooling import TankConfig
        tank = TankConfig(exchange_flow_m3_s=flow)
        assert (tank.bulk_water_temp_c(boards + 1)
                > tank.bulk_water_temp_c(boards))

    @given(st.floats(min_value=0.005, max_value=0.2))
    @settings(max_examples=40)
    def test_crowding_in_unit_interval(self, pitch):
        from repro.cooling import TankConfig
        tank = TankConfig(board_pitch_m=pitch)
        assert 0.0 < tank.crowding_factor() <= 1.0


class TestVfsProperties:
    @given(st.floats(min_value=1.05e9, max_value=3.55e9),
           st.floats(min_value=1.05e9, max_value=3.55e9))
    @settings(max_examples=40)
    def test_power_monotone_pairwise(self, f1, f2):
        from repro.power import HIGH_FREQUENCY_CMP as chip
        lo, hi = sorted((max(f1, 1.25e9), max(f2, 1.25e9)))
        if hi - lo < 1e6:
            return
        assert chip.total_power_w(lo) <= chip.total_power_w(hi) + 1e-9

    @given(st.floats(min_value=1.3e9, max_value=3.6e9))
    @settings(max_examples=40)
    def test_voltage_within_technology_window(self, f):
        from repro.power import HIGH_FREQUENCY_CMP as chip
        v = chip.curve.voltage_for(f)
        assert chip.tech.vdd_min_v - 1e-9 <= v <= chip.tech.vdd_max_v + 1e-9
