"""The request-serving subsystem: hashing, cache, broker, client, HTTP.

The load-bearing guarantees pinned here:

* config-hash stability — permuted key order and int-vs-float equal
  values hash identically (this keys the result cache and coalescing);
* exactly one computation per unique config hash under concurrent
  duplicate submissions, proven by counters;
* served results byte-identical to calling the underlying API
  directly;
* admission control sheds with a structured ``OverloadedError``
  instead of queueing unboundedly;
* graceful drain on shutdown, with serve stats persisted into a valid
  run manifest.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.config import ExperimentResult, ExperimentSpec
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServeError,
    ThermalModelError,
    TransientSolverError,
)
from repro.obs import counter, validate_manifest
from repro.resilience import ResilienceOptions, RetryPolicy
from repro.serve import (
    Broker,
    BrokerConfig,
    ResultCache,
    ServeClient,
    SpecOutcome,
    result_from_dict,
    result_to_json,
    run_spec_resilient,
    spec_hash,
)

#: Coarse grids so real-pipeline tests stay fast.
FAST = {"die_grid": 8, "package_grid": 4}


def fast_spec(**kw) -> ExperimentSpec:
    base = dict(chip="low-power-cmp", n_chips=2, cooling="water",
                package_overrides=dict(FAST), benchmarks=("ep",))
    base.update(kw)
    return ExperimentSpec(**base)


def outcome_of(value) -> SpecOutcome:
    return SpecOutcome(result=value, rung="full", degraded=False,
                       attempts=1)


class GatedRunner:
    """Stub evaluator that blocks until released (scheduling tests)."""

    def __init__(self) -> None:
        self.calls: list[str] = []
        self.started = threading.Event()
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, spec: ExperimentSpec) -> SpecOutcome:
        with self._lock:
            self.calls.append(spec_hash(spec))
        self.started.set()
        assert self.release.wait(timeout=30)
        return outcome_of(("computed", spec_hash(spec)))


# -- config-hash stability (keys the cache and coalescing) ------------------

class TestSpecHash:
    def test_permuted_key_order_same_hash(self):
        a = {"chip": "low-power-cmp", "n_chips": 6, "cooling": "water",
             "flip": False}
        b = {"flip": False, "cooling": "water", "chip": "low-power-cmp",
             "n_chips": 6}
        assert spec_hash(a) == spec_hash(b)

    def test_int_vs_float_equal_values_same_hash(self):
        a = {"chip": "low-power-cmp", "n_chips": 6, "cooling": "water"}
        b = {"chip": "low-power-cmp", "n_chips": 6.0, "cooling": "water"}
        assert spec_hash(a) == spec_hash(b)

    def test_nested_overrides_normalize_too(self):
        a = {"chip": "x", "package_overrides": {"die_grid": 8,
                                                "h_w_m2k": 1.5}}
        b = {"package_overrides": {"h_w_m2k": 1.5, "die_grid": 8.0},
             "chip": "x"}
        assert spec_hash(a) == spec_hash(b)

    def test_spec_and_its_dict_agree(self):
        spec = fast_spec()
        assert spec_hash(spec) == spec_hash(spec.to_dict())

    def test_different_specs_differ(self):
        assert spec_hash(fast_spec(n_chips=2)) != \
            spec_hash(fast_spec(n_chips=3))

    def test_bools_are_not_ints(self):
        a = {"chip": "x", "flip": True}
        b = {"chip": "x", "flip": 1}
        assert spec_hash(a) != spec_hash(b)

    def test_non_integral_floats_unchanged(self):
        a = {"chip": "x", "threshold_c": 79.5}
        b = {"chip": "x", "threshold_c": 79}
        assert spec_hash(a) != spec_hash(b)


# -- strict spec parsing ----------------------------------------------------

class TestStrictSpec:
    def test_unknown_key_rejected_and_named(self):
        with pytest.raises(ConfigurationError, match="'coolant'"):
            ExperimentSpec.from_dict(
                {"chip": "low-power-cmp", "coolant": "water"})

    def test_every_unknown_key_listed(self):
        with pytest.raises(ConfigurationError) as exc:
            ExperimentSpec.from_dict({"chips": 4, "colling": "water"})
        assert "'chips'" in str(exc.value)
        assert "'colling'" in str(exc.value)

    def test_non_strict_drops_unknown_keys(self):
        spec = ExperimentSpec.from_dict(
            {"chip": "low-power-cmp", "coolant": "water"}, strict=False)
        assert spec.chip == "low-power-cmp"
        assert spec.cooling == "water"  # the default, not the typo

    def test_round_trip_still_works(self):
        spec = fast_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_cli_spec_reports_unknown_key(self, capsys):
        from repro.cli import main
        rc = main(["spec", '{"chip": "low-power-cmp", "typo_key": 1}'])
        assert rc == 2
        assert "typo_key" in capsys.readouterr().err

    def test_cli_spec_reports_bad_json(self, capsys):
        from repro.cli import main
        rc = main(["spec", "{not json"])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err


# -- result cache -----------------------------------------------------------

class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes a
        cache.put("c", 3)                   # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        s = cache.stats()
        assert s["evictions"] == 1
        assert s["hits"] == 3
        assert s["misses"] == 1

    def test_ttl_expiry_counts_and_recomputes(self):
        now = [0.0]
        cache = ResultCache(capacity=4, ttl_s=10.0, clock=lambda: now[0])
        cache.put("k", "v")
        assert cache.get("k") == "v"
        now[0] = 10.1
        assert cache.get("k") is None
        s = cache.stats()
        assert s["expirations"] == 1
        assert s["size"] == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache(capacity=0)
        with pytest.raises(ConfigurationError):
            ResultCache(ttl_s=0.0)


# -- broker scheduling ------------------------------------------------------

class TestBroker:
    def test_coalescing_runs_each_unique_hash_once(self):
        runner = GatedRunner()
        coalesced0 = counter("serve.coalesced_total").value
        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        try:
            spec_a, spec_b = fast_spec(), fast_spec(n_chips=3)
            first = broker.submit(spec_a)
            assert runner.started.wait(timeout=10)  # a is running
            dupes = [broker.submit(spec_a) for _ in range(3)]
            queued_b = broker.submit(spec_b)
            dupe_b = broker.submit(spec_b)          # coalesce on queued
            runner.release.set()
            outcome = first.wait(timeout=30)
            assert all(d is first for d in dupes)
            assert dupe_b is queued_b
            # every attached submitter sees the identical object
            assert all(d.wait(timeout=30) is outcome for d in dupes)
            queued_b.wait(timeout=30)
            assert len(runner.calls) == 2           # one per unique hash
            assert counter("serve.coalesced_total").value \
                - coalesced0 == 4
        finally:
            runner.release.set()
            broker.shutdown(drain=True)

    def test_cache_hit_after_completion(self):
        runner = GatedRunner()
        runner.release.set()
        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        try:
            spec = fast_spec(n_chips=4)
            broker.submit(spec).wait(timeout=30)
            job = broker.submit(spec)
            assert job.done and job.from_cache
            assert len(runner.calls) == 1
            assert broker.cache.stats()["hits"] >= 1
        finally:
            broker.shutdown(drain=True)

    def test_admission_control_sheds_structured(self):
        runner = GatedRunner()
        shed0 = counter("serve.shed_total").value
        broker = Broker(BrokerConfig(workers=1, max_queue=2),
                        runner=runner)
        try:
            broker.submit(fast_spec(n_chips=1))     # running
            assert runner.started.wait(timeout=10)
            broker.submit(fast_spec(n_chips=2))     # queued 1
            broker.submit(fast_spec(n_chips=3))     # queued 2
            with pytest.raises(OverloadedError) as exc:
                broker.submit(fast_spec(n_chips=4))
            err = exc.value
            assert err.queued == 2
            assert err.limit == 2
            assert err.to_dict()["error"] == "overloaded"
            assert counter("serve.shed_total").value - shed0 == 1
        finally:
            runner.release.set()
            broker.shutdown(drain=True)

    def test_deadline_expires_queued_request(self):
        runner = GatedRunner()
        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        try:
            broker.submit(fast_spec(n_chips=1))     # occupies the worker
            assert runner.started.wait(timeout=10)
            doomed = broker.submit(fast_spec(n_chips=2),
                                   deadline_s=0.01)
            time.sleep(0.08)
            runner.release.set()
            with pytest.raises(DeadlineExceededError) as exc:
                doomed.wait(timeout=30)
            assert exc.value.waited_s > exc.value.deadline_s
            assert doomed.state == "expired"
        finally:
            runner.release.set()
            broker.shutdown(drain=True)

    def test_priority_orders_the_queue(self):
        runner = GatedRunner()
        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        try:
            broker.submit(fast_spec(n_chips=1))     # running
            assert runner.started.wait(timeout=10)
            low = broker.submit(fast_spec(n_chips=2), priority=5)
            high = broker.submit(fast_spec(n_chips=3), priority=-5)
            runner.release.set()
            low.wait(timeout=30)
            high.wait(timeout=30)
            # gate released once the first job started; order of the
            # remaining calls reflects the heap
            assert runner.calls.index(spec_hash(fast_spec(n_chips=3))) \
                < runner.calls.index(spec_hash(fast_spec(n_chips=2)))
        finally:
            runner.release.set()
            broker.shutdown(drain=True)

    def test_failed_job_fails_alone(self):
        def runner(spec: ExperimentSpec) -> SpecOutcome:
            if spec.n_chips == 13:
                raise ThermalModelError("boom")
            return outcome_of(spec.n_chips)

        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        try:
            bad = broker.submit(fast_spec(n_chips=13))
            good = broker.submit(fast_spec(n_chips=2))
            with pytest.raises(ThermalModelError):
                bad.wait(timeout=30)
            assert good.wait(timeout=30).result == 2
            assert broker.stats()["failed_total"] >= 1
        finally:
            broker.shutdown(drain=True)

    def test_shutdown_drains_then_rejects(self, tmp_path):
        runner = GatedRunner()
        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        jobs = [broker.submit(fast_spec(n_chips=n)) for n in (1, 2, 3)]
        assert runner.started.wait(timeout=10)
        runner.release.set()
        manifest_path = tmp_path / "serve.manifest.json"
        stats = broker.shutdown(drain=True, manifest_path=manifest_path)
        assert all(j.state == "done" for j in jobs)   # drained, not cut
        assert stats["completed_total"] >= 3
        with pytest.raises(ServeError):
            broker.submit(fast_spec(n_chips=9))
        doc = json.loads(manifest_path.read_text())
        validate_manifest(doc)
        assert doc["name"] == "serve"
        assert doc["extra"]["serve_stats"]["queued"] == 0

    def test_shutdown_without_drain_cancels_queued(self):
        runner = GatedRunner()
        broker = Broker(BrokerConfig(workers=1, max_queue=8),
                        runner=runner)
        running = broker.submit(fast_spec(n_chips=1))
        assert runner.started.wait(timeout=10)
        queued = broker.submit(fast_spec(n_chips=2))
        threading.Timer(0.1, runner.release.set).start()
        broker.shutdown(drain=False)
        assert running.state == "done"     # in-flight finished
        with pytest.raises(ServeError, match="cancelled"):
            queued.wait(timeout=5)
        assert queued.state == "cancelled"

    def test_stream_progress_event_sequence(self):
        runner = GatedRunner()
        runner.release.set()
        broker = Broker(BrokerConfig(workers=1), runner=runner)
        client = ServeClient(broker)
        try:
            jid = client.submit(fast_spec(n_chips=5), label="probe")
            events = list(client.stream_progress(jid, timeout=30))
            assert [e["event"] for e in events] == \
                ["queued", "running", "done"]
            assert all(e["label"] == "probe" for e in events)
            assert events[-1]["t_s"] >= 0.0
        finally:
            broker.shutdown(drain=True)

    def test_unknown_job_id(self):
        broker = Broker(BrokerConfig(workers=1),
                        runner=lambda s: outcome_of(None))
        try:
            with pytest.raises(ServeError, match="unknown job"):
                broker.job("j999999-nope")
        finally:
            broker.shutdown(drain=True)


# -- the identity guarantee -------------------------------------------------

class TestServedResults:
    def test_byte_identical_to_direct_api(self):
        spec = fast_spec()
        broker = Broker(BrokerConfig(workers=2))
        client = ServeClient(broker)
        try:
            jid = client.submit(spec)
            served = client.result(jid, timeout=120)
        finally:
            broker.shutdown(drain=True)
        assert result_to_json(served) == result_to_json(spec.run())

    def test_wire_round_trip_preserves_equality(self):
        spec = fast_spec()
        res = spec.run()
        from repro.serve import result_to_dict
        over_wire = json.loads(json.dumps(result_to_dict(res)))
        assert result_from_dict(over_wire) == res

    def test_concurrent_duplicates_compute_once(self):
        spec = fast_spec(n_chips=3)
        calls = []
        lock = threading.Lock()

        def counting(s: ExperimentSpec) -> SpecOutcome:
            with lock:
                calls.append(spec_hash(s))
            time.sleep(0.05)
            return outcome_of(spec_hash(s))

        broker = Broker(BrokerConfig(workers=2, max_queue=64),
                        runner=counting)
        client = ServeClient(broker)
        try:
            ids = [client.submit(spec) for _ in range(20)]
            results = {client.result(j, timeout=30) for j in ids}
        finally:
            broker.shutdown(drain=True)
        assert len(results) == 1
        assert len(calls) == 1      # exactly one computation


# -- resilience wiring ------------------------------------------------------

class TestResilientRunner:
    def test_transient_errors_retry(self, monkeypatch):
        spec = fast_spec()
        direct = spec.run()
        attempts = []

        real_run = ExperimentSpec.run

        def flaky(self):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientSolverError("blip")
            return real_run(self)

        monkeypatch.setattr(ExperimentSpec, "run", flaky)
        outcome = run_spec_resilient(spec, ResilienceOptions(
            retry_policy=RetryPolicy(max_attempts=3, seed=1),
            sleep=lambda s: None))
        assert outcome.attempts == 3
        assert outcome.rung == "full"
        assert not outcome.degraded
        assert result_to_json(outcome.result) == result_to_json(direct)

    def test_model_fault_degrades_to_analytic(self, monkeypatch):
        monkeypatch.setattr(
            ExperimentSpec, "run",
            lambda self: (_ for _ in ()).throw(
                ThermalModelError("singular")))
        outcome = run_spec_resilient(fast_spec(), ResilienceOptions(
            allow_degraded=True, sleep=lambda s: None))
        assert outcome.rung == "analytic"
        assert outcome.degraded
        assert outcome.result.feasible
        assert outcome.result.npb_time_s  # NPB step still ran

    def test_degradation_off_propagates(self, monkeypatch):
        monkeypatch.setattr(
            ExperimentSpec, "run",
            lambda self: (_ for _ in ()).throw(
                ThermalModelError("singular")))
        with pytest.raises(ThermalModelError):
            run_spec_resilient(fast_spec(), ResilienceOptions(
                allow_degraded=False, sleep=lambda s: None))


# -- process-mode evaluation ------------------------------------------------

class TestProcessMode:
    def test_pool_results_match_direct(self):
        spec = fast_spec()
        broker = Broker(BrokerConfig(workers=2, use_processes=True))
        client = ServeClient(broker)
        try:
            jid = client.submit(spec)
            served = client.result(jid, timeout=180)
        finally:
            broker.shutdown(drain=True)
        assert result_to_json(served) == result_to_json(spec.run())


def _pool_add(payload, item):
    counter("test.pool_items").inc()
    return payload + item


class TestWorkerPool:
    def test_submit_and_metrics_repatriation(self):
        from repro.parallel import WorkerPool
        before = counter("test.pool_items").value
        with WorkerPool(_pool_add, 10, workers=2) as pool:
            futs = [pool.submit(i) for i in range(5)]
            assert [f.result(timeout=60) for f in futs] == \
                [10, 11, 12, 13, 14]
        assert counter("test.pool_items").value - before == 5

    def test_closed_pool_rejects(self):
        from repro.parallel import WorkerPool
        pool = WorkerPool(_pool_add, 0, workers=1)
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.submit(1)


# -- HTTP endpoint ----------------------------------------------------------

@pytest.fixture()
def http_serve():
    """A live endpoint on an ephemeral port, drained at teardown."""
    from repro.serve import HttpServeClient, ServeHTTPServer
    broker = Broker(BrokerConfig(workers=2, max_queue=4))
    server = ServeHTTPServer(broker, port=0)
    server.serve_in_thread()
    try:
        yield broker, server, HttpServeClient(server.url)
    finally:
        server.shutdown()
        server.server_close()
        broker.shutdown(drain=True)


class TestHTTP:
    def test_submit_result_round_trip(self, http_serve):
        _, _, client = http_serve
        spec = fast_spec()
        assert client.healthz()
        ack = client.submit(spec.to_dict(), label="wire")
        assert ack["config_hash"] == spec_hash(spec)
        doc = client.result(ack["job_id"], timeout_s=120)
        assert doc["http_status"] == 200
        assert doc["state"] == "done"
        assert doc["rung"] == "full"
        assert not doc["degraded"]
        # the wire payload decodes back to the exact direct-API result
        assert result_from_dict(doc["result"]) == spec.run()

    def test_duplicate_submissions_share_a_job(self, http_serve):
        broker, _, client = http_serve
        spec = fast_spec(n_chips=6).to_dict()
        acks = [client.submit(spec) for _ in range(4)]
        # same hash -> one computation: every ack is the same job or a
        # cache-hit clone of its outcome
        client.result(acks[0]["job_id"], timeout_s=120)
        stats = client.stats()
        assert stats["coalesced_total"] + stats["cache"]["hits"] >= 1
        status = client.status(acks[0]["job_id"])
        assert status["state"] == "done"
        assert [e["event"] for e in status["events"]][:2] == \
            ["queued", "running"]

    def test_overload_is_a_structured_429(self):
        from repro.serve import HttpServeClient, ServeHTTPServer
        runner = GatedRunner()
        broker = Broker(BrokerConfig(workers=1, max_queue=1),
                        runner=runner)
        server = ServeHTTPServer(broker, port=0)
        server.serve_in_thread()
        client = HttpServeClient(server.url)
        try:
            client.submit(fast_spec(n_chips=1).to_dict())
            assert runner.started.wait(timeout=10)
            client.submit(fast_spec(n_chips=2).to_dict())
            with pytest.raises(OverloadedError) as exc:
                client.submit(fast_spec(n_chips=3).to_dict())
            assert exc.value.limit == 1
        finally:
            runner.release.set()
            server.shutdown()
            server.server_close()
            broker.shutdown(drain=True)

    def test_bad_spec_is_a_400_naming_the_key(self, http_serve):
        _, _, client = http_serve
        with pytest.raises(ServeError, match="typo_key"):
            client.submit({"chip": "low-power-cmp", "typo_key": 1})

    def test_unknown_job_is_a_404(self, http_serve):
        _, _, client = http_serve
        doc = client.result("j000000-missing")
        assert doc["http_status"] == 404
        assert doc["error"] == "unknown_job"

    def test_pending_long_poll_times_out_as_202(self):
        from repro.serve import HttpServeClient, ServeHTTPServer
        runner = GatedRunner()
        broker = Broker(BrokerConfig(workers=1), runner=runner)
        server = ServeHTTPServer(broker, port=0)
        server.serve_in_thread()
        client = HttpServeClient(server.url)
        try:
            ack = client.submit(fast_spec(n_chips=1).to_dict())
            assert runner.started.wait(timeout=10)
            doc = client.result(ack["job_id"], timeout_s=0.05)
            assert doc["http_status"] == 202
            assert doc["state"] == "running"
        finally:
            runner.release.set()
            server.shutdown()
            server.server_close()
            broker.shutdown(drain=True)

    def test_shutdown_route_stops_the_listener(self, http_serve):
        _, server, client = http_serve
        assert client.shutdown()["status"] == "shutting_down"
        deadline = time.monotonic() + 5
        while client.healthz() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not client.healthz()


# -- Ctrl-C behaviour -------------------------------------------------------

class TestKeyboardInterrupt:
    def test_campaign_exits_130_with_resume_hint(self, monkeypatch,
                                                 tmp_path, capsys):
        from repro.cli import main
        from repro.core.campaign import CampaignRunner

        def interrupted(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(CampaignRunner, "run", interrupted)
        rc = main(["campaign", "--chip", "low-power-cmp",
                   "--max-chips", "1", "--cooling", "water",
                   "--checkpoint", str(tmp_path / "cp.json")])
        assert rc == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err

    def test_any_command_exits_130(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setattr(
            ExperimentSpec, "run",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt()))
        rc = main(["spec", '{"chip": "low-power-cmp"}'])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err
