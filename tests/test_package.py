"""Tests for the HotSpot-style package builder and ThermalModel facade."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cooling.options import get_cooling
from repro.power.processors import get_chip
from repro.stack.chipstack import StackConfig, flip_even_layers
from repro.thermal.hotspot import ThermalModel, model_for
from repro.thermal.package import (
    DEFAULT_PACKAGE,
    build_network,
    die_layer_names,
    stack_power_maps,
)
from repro.units import ghz


@pytest.fixture(scope="module")
def lp():
    return get_chip("low-power-cmp")


class TestPackageParams:
    def test_table2_geometry(self):
        p = DEFAULT_PACKAGE
        assert p.sink_side_m == pytest.approx(0.12)
        assert p.spreader_side_m == pytest.approx(0.06)
        assert p.spreader_thickness_m == pytest.approx(0.001)
        assert p.sink_fin_area_m2 == pytest.approx(0.3024)
        assert p.ambient_c == 25.0

    def test_fin_multiplier_21x(self):
        assert DEFAULT_PACKAGE.fin_multiplier == pytest.approx(21.0)

    def test_invalid_param_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            replace(DEFAULT_PACKAGE, sink_fin_area_m2=0.0)


class TestBuildNetwork:
    def test_layer_stack_order(self, lp, fast_params):
        stack = StackConfig(chip=lp, n_chips=3)
        net = build_network(stack, get_cooling("water"), fast_params)
        names = [la.name for la in net.layers]
        assert names == ["board", "substrate", "die0", "die1", "die2",
                         "spreader", "sink"]

    def test_die_layer_names(self, lp):
        stack = StackConfig(chip=lp, n_chips=2)
        assert die_layer_names(stack) == ("die0", "die1")

    def test_interfaces_count(self, lp, fast_params):
        stack = StackConfig(chip=lp, n_chips=4)
        net = build_network(stack, get_cooling("air"), fast_params)
        # board-substrate, substrate-die0, 3 inter-die, die3-spreader,
        # spreader-sink = 7
        assert len(net.interfaces) == 7

    def test_boundaries_sink_and_board(self, lp, fast_params):
        net = build_network(StackConfig(chip=lp, n_chips=1),
                            get_cooling("water"), fast_params)
        layers = {b.layer for b in net.boundaries}
        assert layers == {"sink", "board"}

    def test_cold_plate_has_no_fin_multiplier(self, lp, fast_params):
        net = build_network(StackConfig(chip=lp, n_chips=1),
                            get_cooling("water_pipe"), fast_params)
        top = [b for b in net.boundaries if b.layer == "sink"][0]
        assert top.area_multiplier == 1.0

    def test_air_fin_utilization_applied(self, lp, fast_params):
        net = build_network(StackConfig(chip=lp, n_chips=1),
                            get_cooling("air"), fast_params)
        top = [b for b in net.boundaries if b.layer == "sink"][0]
        expected = fast_params.fin_multiplier * fast_params.air_fin_utilization
        assert top.area_multiplier == pytest.approx(expected)

    def test_immersion_wets_board_with_coolant_h(self, lp, fast_params):
        oil = build_network(StackConfig(chip=lp, n_chips=1),
                            get_cooling("mineral_oil"), fast_params)
        board = [b for b in oil.boundaries if b.layer == "board"][0]
        assert board.h_w_m2k == pytest.approx(160.0)

    def test_water_board_h_includes_film(self, lp, fast_params):
        net = build_network(StackConfig(chip=lp, n_chips=1),
                            get_cooling("water"), fast_params)
        board = [b for b in net.boundaries if b.layer == "board"][0]
        # film (120um/0.14) in series with 1/800
        expected = 1.0 / (120e-6 / 0.14 + 1.0 / 800.0)
        assert board.h_w_m2k == pytest.approx(expected)

    def test_non_immersion_board_sees_air(self, lp, fast_params):
        for cool in ("air", "water_pipe"):
            net = build_network(StackConfig(chip=lp, n_chips=1),
                                get_cooling(cool), fast_params)
            board = [b for b in net.boundaries if b.layer == "board"][0]
            assert board.h_w_m2k == pytest.approx(14.0)


class TestStackPowerMaps:
    def test_keys_and_conservation(self, lp, fast_params):
        stack = StackConfig(chip=lp, n_chips=3)
        maps = stack_power_maps(stack, ghz(2.0), fast_params)
        assert set(maps) == {"die0", "die1", "die2"}
        for m in maps.values():
            assert m.sum() == pytest.approx(47.2, rel=1e-9)

    def test_rotation_reverses_map(self, lp, fast_params):
        plain = stack_power_maps(StackConfig(chip=lp, n_chips=2),
                                 ghz(2.0), fast_params)
        flipped = stack_power_maps(
            StackConfig(chip=lp, n_chips=2, rotations=(False, True)),
            ghz(2.0), fast_params)
        np.testing.assert_allclose(flipped["die0"], plain["die0"])
        np.testing.assert_allclose(flipped["die1"],
                                   plain["die1"][::-1, ::-1], atol=1e-12)


class TestThermalModel:
    def test_temperature_monotone_in_frequency(self, lp_water_4, lp):
        freqs = lp.ladder.frequencies()
        temps = [lp_water_4.max_temperature_c(float(f)) for f in freqs]
        assert all(a < b for a, b in zip(temps, temps[1:]))

    def test_temperature_monotone_in_chips(self, lp, fast_params):
        temps = []
        for n in (1, 2, 4):
            m = ThermalModel(StackConfig(chip=lp, n_chips=n),
                             get_cooling("water"), fast_params)
            temps.append(m.max_temperature_c(ghz(1.5)))
        assert temps[0] < temps[1] < temps[2]

    def test_coolant_ordering_at_fixed_point(self, lp, fast_params):
        temps = {}
        for cool in ("air", "water_pipe", "mineral_oil", "fluorinert",
                     "water"):
            m = ThermalModel(StackConfig(chip=lp, n_chips=2),
                             get_cooling(cool), fast_params)
            temps[cool] = m.max_temperature_c(ghz(1.5))
        assert (temps["air"] > temps["water_pipe"] > temps["mineral_oil"]
                >= temps["fluorinert"] > temps["water"])

    def test_result_cache_hits(self, lp_water_4):
        r1 = lp_water_4.result(ghz(1.5))
        r2 = lp_water_4.result(ghz(1.5))
        assert r1 is r2

    def test_per_die_max_len(self, lp_water_4):
        assert len(lp_water_4.per_die_max_c(ghz(1.0))) == 4

    def test_fields_shape(self, lp_water_4, fast_params):
        fields = lp_water_4.die_temperature_fields(ghz(1.0))
        assert set(fields) == {"die0", "die1", "die2", "die3"}
        for f in fields.values():
            assert f.shape == (fast_params.die_grid, fast_params.die_grid)

    def test_meets_threshold(self, lp_water_4):
        assert lp_water_4.meets_threshold(ghz(1.0))

    def test_model_for_cache(self):
        a = model_for("low-power-cmp", 2, "water")
        b = model_for("low-power-cmp", 2, "water")
        assert a is b

    def test_energy_balance_full_package(self, lp_water_4):
        pm = lp_water_4.power_maps(ghz(1.5))
        res = lp_water_4.network.solve(pm)
        inj, ext = lp_water_4.network.heat_balance(pm, res)
        assert ext == pytest.approx(inj, rel=1e-8)

    def test_flip_reduces_peak_at_high_power(self, fast_params):
        hf = get_chip("high-frequency-cmp")
        plain = ThermalModel(StackConfig(chip=hf, n_chips=4),
                             get_cooling("water"), fast_params)
        flip = ThermalModel(flip_even_layers(hf, 4),
                            get_cooling("water"), fast_params)
        assert (flip.max_temperature_c(ghz(3.6))
                < plain.max_temperature_c(ghz(3.6)))

    def test_film_thickness_increases_temperature(self, lp, fast_params):
        base = get_cooling("water")
        thick = base.with_film_thickness(500e-6)
        t_base = ThermalModel(StackConfig(chip=lp, n_chips=2), base,
                              fast_params).max_temperature_c(ghz(2.0))
        t_thick = ThermalModel(StackConfig(chip=lp, n_chips=2), thick,
                               fast_params).max_temperature_c(ghz(2.0))
        assert t_thick > t_base
