"""Tests for the co-simulation pipeline and sweep drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cosim import run_npb_comparison
from repro.core.sweeps import (
    frequency_vs_chips,
    rotation_gain_c,
    temperature_vs_frequency,
    temperature_vs_h,
    thermal_maps,
)
from repro.errors import InfeasibleError
from repro.perfsim.npb import NPB_ORDER
from repro.units import ghz


@pytest.fixture(scope="module")
def lp6(fast_params):
    return run_npb_comparison("low-power-cmp", 6, reference="water_pipe",
                              params=fast_params)


class TestNpbComparison:
    def test_reference_relative_is_one(self, lp6):
        rel = lp6.relative_times("water_pipe")
        assert all(v == pytest.approx(1.0) for v in rel.values())

    def test_water_faster_than_pipe(self, lp6):
        rel = lp6.relative_times("water")
        assert all(v < 1.0 for v in rel.values())

    def test_all_nine_benchmarks_present(self, lp6):
        assert set(lp6.relative_times("water")) == set(NPB_ORDER)

    def test_ep_gains_most(self, lp6):
        rel = lp6.relative_times("water")
        assert rel["ep"] == min(rel.values())

    def test_memory_bound_gains_least(self, lp6):
        rel = lp6.relative_times("water")
        weakest = max(rel, key=rel.get)
        assert weakest in ("is", "cg")

    def test_oil_between_pipe_and_water(self, lp6):
        oil = lp6.average_relative("mineral_oil")
        water = lp6.average_relative("water")
        assert water <= oil <= 1.0

    def test_threads_default_to_cores(self, lp6):
        assert lp6.threads == 24

    def test_average_and_best(self, lp6):
        avg = lp6.average_relative("water")
        best = lp6.best_improvement("water")
        assert 0.0 < 1.0 - avg < best < 1.0

    def test_unknown_outcome_rejected(self, lp6):
        with pytest.raises(InfeasibleError):
            lp6.outcome("peltier")

    def test_infeasible_reference_raises(self, fast_params):
        cmp8 = run_npb_comparison("low-power-cmp", 8,
                                  reference="water_pipe",
                                  params=fast_params)
        if not cmp8.outcome("water_pipe").feasible:
            with pytest.raises(InfeasibleError):
                cmp8.relative_times("water")


class TestFrequencySweeps:
    def test_series_shapes(self, fast_params):
        series = frequency_vs_chips("low-power-cmp", (1, 2, 4),
                                    ("air", "water"), params=fast_params)
        assert len(series) == 2
        assert series[0].chips == (1, 2, 4)

    def test_frequency_nonincreasing_in_chips(self, fast_params):
        (s,) = frequency_vs_chips("low-power-cmp", (1, 2, 3, 4, 6),
                                  ("water",), params=fast_params)
        feasible = [f for f in s.f_ghz if f > 0]
        assert all(a >= b for a, b in zip(feasible, feasible[1:]))

    def test_water_dominates_air(self, fast_params):
        air, water = frequency_vs_chips("low-power-cmp", (1, 2, 4),
                                        ("air", "water"),
                                        params=fast_params)
        for fa, fw in zip(air.f_ghz, water.f_ghz):
            assert fw >= fa

    def test_feasible_up_to(self, fast_params):
        (s,) = frequency_vs_chips("low-power-cmp", (1, 2, 10),
                                  ("air",), params=fast_params)
        assert s.feasible_up_to() <= 2 or s.feasible_up_to() == 10


class TestHSweep:
    def test_temperature_decreasing_in_h(self, fast_params):
        hs = (14.0, 100.0, 400.0, 800.0, 1600.0)
        series = temperature_vs_h("low-power-cmp", hs, n_chips=2,
                                  params=fast_params)
        t = series.max_temp_c
        assert all(a > b for a, b in zip(t, t[1:]))

    def test_diminishing_returns(self, fast_params):
        """Fig. 14 shape: each doubling of h buys less."""
        hs = (100.0, 200.0, 400.0, 800.0)
        series = temperature_vs_h("low-power-cmp", hs, n_chips=2,
                                  params=fast_params)
        drops = -np.diff(series.max_temp_c)
        assert all(a > b for a, b in zip(drops, drops[1:]))

    def test_beyond_water_still_helps(self, fast_params):
        """Fig. 14 finding: h above water's 800 still reduces T."""
        series = temperature_vs_h("xeon-e5-2667v4", (800.0, 2000.0),
                                  n_chips=2, params=fast_params)
        assert series.max_temp_c[1] < series.max_temp_c[0] - 0.5


class TestRotation:
    def test_flip_gain_positive_at_max_freq(self, fast_params):
        gain = rotation_gain_c("high-frequency-cmp", "water", ghz(3.6),
                               params=fast_params)
        assert gain > 0

    def test_flip_gain_grows_with_frequency(self, fast_params):
        g_lo = rotation_gain_c("high-frequency-cmp", "water", ghz(2.0),
                               params=fast_params)
        g_hi = rotation_gain_c("high-frequency-cmp", "water", ghz(3.6),
                               params=fast_params)
        assert g_hi > g_lo

    def test_series_cover_ladder(self, fast_params):
        s = temperature_vs_frequency("high-frequency-cmp", "water",
                                     params=fast_params)
        assert len(s.f_ghz) == 13
        assert s.max_temp_c == tuple(sorted(s.max_temp_c))

    def test_off_ladder_rejected(self, fast_params):
        with pytest.raises(ValueError):
            rotation_gain_c("high-frequency-cmp", "water", ghz(3.5),
                            params=fast_params)


class TestThermalMaps:
    def test_map_shapes(self, fast_params):
        maps = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                            params=fast_params)
        assert set(maps) == {"die0", "die1", "die2", "die3"}

    def test_core_row_is_hottest_region(self, fast_params):
        """Fig. 9: cores (bottom row of the die) form the hotspot."""
        maps = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                            params=fast_params)
        field = maps["die0"]
        n = field.shape[0]
        bottom = field[: n // 4].mean()
        top = field[n // 2:].mean()
        assert bottom > top

    def test_flip_reduces_vertical_asymmetry(self, fast_params):
        """Rotating alternate dies balances each die's bottom-vs-top
        temperature contrast (a rotated die still inherits much of its
        unrotated neighbours' profile, so the side does not simply swap —
        the stack just flattens)."""
        def asymmetry(maps):
            out = 0.0
            n = maps["die1"].shape[0]
            for f in maps.values():
                out += abs(f[: n // 4].mean() - f[3 * n // 4:].mean())
            return out
        plain = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                             params=fast_params)
        flip = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                            flipped=True, params=fast_params)
        assert asymmetry(flip) < asymmetry(plain)

    def test_flip_flattens_fields(self, fast_params):
        from repro.thermal.maps import uniformity_index
        plain = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                             params=fast_params)
        flip = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                            flipped=True, params=fast_params)
        # Inner dies see a more uniform vertical power stack when
        # neighbours are rotated.
        assert max(f.max() for f in flip.values()) < max(
            f.max() for f in plain.values())

    def test_phi_more_uniform_than_cmp(self, fast_params):
        """Fig. 18's observation: the Phi's spread cores flatten the map."""
        from repro.thermal.maps import uniformity_index
        cmp_maps = thermal_maps("high-frequency-cmp", "water", ghz(3.6),
                                params=fast_params)
        phi_maps = thermal_maps("xeon-phi-7290", "water", ghz(1.2),
                                params=fast_params)
        cmp_u = np.mean([uniformity_index(f) for f in cmp_maps.values()])
        phi_u = np.mean([uniformity_index(f) for f in phi_maps.values()])
        assert phi_u > cmp_u
