"""Tests for cooling options and the facility/PUE model."""

from __future__ import annotations

import pytest

from repro.cooling import (
    AIR_COOLING,
    FACILITIES,
    NATURAL_WATER_DIRECT,
    OIL_IMMERSION,
    OIL_IMMERSION_FACILITY,
    PAPER_ORDER,
    WATER_IMMERSION,
    WATER_PIPE,
    CoolingFacility,
    CoolingOption,
    CoolingStage,
    annual_cooling_energy_mwh,
    cooling_names,
    datacenter_power_kw,
    get_cooling,
    pue_comparison,
)
from repro.datasets import paper
from repro.errors import ConfigurationError
from repro.thermal.coolants import WATER
from repro.thermal.materials import PARYLENE


class TestCoolingOptions:
    def test_paper_order(self):
        assert cooling_names() == PAPER_ORDER

    def test_lookup(self):
        assert get_cooling("water") is WATER_IMMERSION
        with pytest.raises(ConfigurationError):
            get_cooling("peltier")

    def test_water_requires_film(self):
        with pytest.raises(ConfigurationError, match="parylene"):
            CoolingOption(name="bare-water", style="immersion",
                          primary_coolant=WATER, board_coolant=WATER)

    def test_water_pipe_confines_water_without_film(self):
        assert WATER_PIPE.film_material is None

    def test_dielectric_immersion_needs_no_film(self):
        assert OIL_IMMERSION.film_material is None
        assert OIL_IMMERSION.film_resistance_m2kw == 0.0

    def test_film_resistance_value(self):
        assert WATER_IMMERSION.film_resistance_m2kw == pytest.approx(
            120e-6 / 0.14)

    def test_surface_conductance_series(self):
        h = WATER_IMMERSION.surface_conductance_w_m2k(WATER)
        assert h == pytest.approx(1.0 / (120e-6 / 0.14 + 1.0 / 800.0))
        assert h < WATER.h_w_m2k

    def test_wets_board_only_for_immersion(self):
        assert WATER_IMMERSION.wets_board
        assert OIL_IMMERSION.wets_board
        assert not AIR_COOLING.wets_board
        assert not WATER_PIPE.wets_board

    def test_cold_plate_requires_resistance(self):
        with pytest.raises(ConfigurationError, match="cold_plate_r_kw"):
            CoolingOption(name="bad", style="cold_plate",
                          primary_coolant=WATER,
                          board_coolant=WATER)

    def test_film_without_thickness_rejected(self):
        with pytest.raises(ConfigurationError):
            CoolingOption(name="bad", style="immersion",
                          primary_coolant=WATER, board_coolant=WATER,
                          film_material=PARYLENE, film_thickness_m=0.0)

    def test_with_film_thickness_copy(self):
        thin = WATER_IMMERSION.with_film_thickness(50e-6)
        assert thin.film_thickness_m == 50e-6
        assert WATER_IMMERSION.film_thickness_m == 120e-6

    def test_with_film_thickness_requires_film(self):
        with pytest.raises(ConfigurationError, match="no film"):
            AIR_COOLING.with_film_thickness(50e-6)

    def test_unknown_style_rejected(self):
        with pytest.raises(ConfigurationError, match="style"):
            CoolingOption(name="bad", style="peltier",
                          primary_coolant=WATER, board_coolant=WATER)


class TestPue:
    def test_natural_water_pue_near_one(self):
        # Section 4.4: "a PUE of approximately 1.00".
        assert NATURAL_WATER_DIRECT.pue() == pytest.approx(
            paper.NATURAL_WATER_PUE, abs=0.01)

    def test_oil_immersion_pue_near_reported(self):
        # Green Revolution Cooling white paper: PUE as low as 1.03.
        assert OIL_IMMERSION_FACILITY.pue() == pytest.approx(
            paper.OIL_IMMERSION_PUE_REPORTED, abs=0.08)

    def test_air_pue_worst(self):
        pues = pue_comparison()
        assert max(pues, key=pues.get) == "air-cooled (CRAC + chiller)"

    def test_natural_water_best(self):
        pues = pue_comparison()
        assert min(pues, key=pues.get) == NATURAL_WATER_DIRECT.name

    def test_ordering_matches_paper_argument(self):
        # Fewer/cheaper stages -> lower PUE: air > pipe > oil > tank >
        # natural water.
        pues = pue_comparison()
        ordered = [
            "air-cooled (CRAC + chiller)",
            "water-pipe (cold plates + warm-water loop)",
            "oil immersion (tanks + secondary water loop)",
            "water immersion (tank + heat exchanger)",
            NATURAL_WATER_DIRECT.name,
        ]
        values = [pues[name] for name in ordered]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_datacenter_power(self):
        total = datacenter_power_kw(1000.0, NATURAL_WATER_DIRECT)
        assert total == pytest.approx(1000.0 * NATURAL_WATER_DIRECT.pue())

    def test_datacenter_power_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            datacenter_power_kw(0.0, NATURAL_WATER_DIRECT)

    def test_annual_energy_zero_stage_facility_small(self):
        e = annual_cooling_energy_mwh(1000.0, NATURAL_WATER_DIRECT)
        assert e < 100.0   # < 100 MWh/year for a 1 MW hall

    def test_negative_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            CoolingStage("bad", -0.1)

    def test_facility_overhead_sums_stages(self):
        f = CoolingFacility(name="x", stages=(CoolingStage("a", 0.1),
                                              CoolingStage("b", 0.2)))
        assert f.cooling_overhead() == pytest.approx(0.3)

    def test_all_facilities_registered(self):
        assert len(FACILITIES) == 5
