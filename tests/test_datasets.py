"""Consistency tests: the digitized paper numbers vs the library config.

These catch silent drift between the dataset (what the paper says) and
the configuration objects (what the library uses).
"""

from __future__ import annotations

import pytest

from repro.cooling import WATER_IMMERSION, get_cooling
from repro.datasets import paper
from repro.perfsim import (
    DEFAULT_HIERARCHY,
    DEFAULT_ROUTER,
    MEMORY_LATENCY_CYCLES_AT_REF,
    NPB_ORDER,
)
from repro.power import HIGH_FREQUENCY_CMP, LOW_POWER_CMP, TECH_22NM_HP
from repro.thermal import DEFAULT_PACKAGE, PARYLENE, get_coolant
from repro.units import KIB, MIB, ghz


class TestTable1Consistency:
    def test_core_count(self):
        assert LOW_POWER_CMP.num_cores == paper.TABLE1["num_cores"]

    def test_cache_sizes(self):
        t1 = paper.TABLE1
        assert DEFAULT_HIERARCHY.l1i_size_bytes == t1["l1i_kib"] * KIB
        assert DEFAULT_HIERARCHY.l1_size_bytes == t1["l1d_kib"] * KIB
        assert DEFAULT_HIERARCHY.l2_total_bytes == t1["l2_mib"] * MIB
        assert DEFAULT_HIERARCHY.line_bytes == t1["line_bytes"]

    def test_cache_latencies(self):
        assert DEFAULT_HIERARCHY.l1_cycles == paper.TABLE1[
            "l1_latency_cycles"]
        assert DEFAULT_HIERARCHY.l2_cycles == paper.TABLE1[
            "l2_latency_cycles"]

    def test_memory_latency_cycles(self):
        assert MEMORY_LATENCY_CYCLES_AT_REF == paper.TABLE1[
            "memory_latency_cycles"]

    def test_power_anchors(self):
        assert LOW_POWER_CMP.total_power_w(
            ghz(paper.TABLE1["max_power_low_ghz"])) == pytest.approx(
            paper.TABLE1["max_power_low_w"])
        assert HIGH_FREQUENCY_CMP.total_power_w(
            ghz(paper.TABLE1["max_power_high_ghz"])) == pytest.approx(
            paper.TABLE1["max_power_high_w"])

    def test_die_area(self):
        area_mm2 = LOW_POWER_CMP.floorplan().die_area * 1e6
        assert area_mm2 == pytest.approx(paper.TABLE1["area_mm2"])

    def test_noc_parameters(self):
        t1 = paper.TABLE1
        assert DEFAULT_ROUTER.num_vcs == t1["num_vcs"]
        assert DEFAULT_ROUTER.vc_buffer_flits == t1["buffer_flits_per_vc"]
        assert DEFAULT_ROUTER.control_flits == t1["control_flits"]
        assert DEFAULT_ROUTER.data_flits == t1["data_flits"]


class TestTable2Consistency:
    def test_heatsink(self):
        t2 = paper.TABLE2
        assert DEFAULT_PACKAGE.sink_side_m == pytest.approx(
            t2["heatsink_cm"][0] / 100.0)
        assert DEFAULT_PACKAGE.sink_fin_area_m2 == t2["heatsink_area_m2"]

    def test_spreader(self):
        t2 = paper.TABLE2
        assert DEFAULT_PACKAGE.spreader_side_m == pytest.approx(
            t2["spreader_cm"][0] / 100.0)
        assert DEFAULT_PACKAGE.spreader_thickness_m == pytest.approx(
            t2["spreader_cm"][2] / 100.0)

    def test_parylene(self):
        t2 = paper.TABLE2
        assert WATER_IMMERSION.film_thickness_m == pytest.approx(
            t2["parylene_um"] * 1e-6)
        assert PARYLENE.conductivity_w_mk == t2["parylene_k_w_mk"]

    def test_ambient(self):
        assert DEFAULT_PACKAGE.ambient_c == paper.TABLE2["outside_temp_c"]


class TestSection3Consistency:
    def test_alpha(self):
        assert TECH_22NM_HP.alpha == paper.ALPHA_VELOCITY_SATURATION

    def test_heat_transfer_coefficients(self):
        for name, h in paper.HEAT_TRANSFER_W_M2K.items():
            assert get_coolant(name).h_w_m2k == h

    def test_vfs_ladders(self):
        lp = paper.VFS_LOW_POWER
        assert LOW_POWER_CMP.ladder.num_steps == lp["steps"]
        assert LOW_POWER_CMP.ladder.f_min_hz == pytest.approx(
            ghz(lp["min_ghz"]))
        hf = paper.VFS_HIGH_FREQ
        assert HIGH_FREQUENCY_CMP.ladder.num_steps == hf["steps"]
        assert HIGH_FREQUENCY_CMP.ladder.step_hz == pytest.approx(
            ghz(hf["step_ghz"]))

    def test_thresholds(self):
        assert LOW_POWER_CMP.threshold_c == paper.THRESHOLD_C
        from repro.power import XEON_E5_2667V4
        assert XEON_E5_2667V4.threshold_c == paper.E5_THRESHOLD_C

    def test_nine_npb_programs(self):
        assert len(NPB_ORDER) == paper.NPB_PROGRAMS

    def test_thread_counts(self):
        from repro.perfsim import SystemConfig
        for n, threads in paper.NPB_THREADS.items():
            assert SystemConfig(n_chips=n).total_cores == threads


class TestProtoConsistency:
    def test_film_thicknesses(self):
        from repro.prototype import PAPER_THICKNESSES_M
        assert tuple(t * 1e6 for t in PAPER_THICKNESSES_M) == (
            paper.FILM_WORKING_UM)

    def test_cooling_names_cover_paper_order(self):
        for name in ("air", "water_pipe", "mineral_oil", "fluorinert",
                     "water"):
            assert get_cooling(name).name == name
