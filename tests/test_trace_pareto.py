"""Tests for the execution tracer and the Pareto exploration."""

from __future__ import annotations

import pytest

from repro.core.pareto import (
    DesignPoint,
    evaluate_designs,
    frontier_share,
    pareto_frontier,
)
from repro.errors import ConfigurationError
from repro.perfsim import SystemConfig, traced_run
from repro.units import ghz

FAST = 12_000


@pytest.fixture(scope="module")
def cg_trace():
    return traced_run("cg", SystemConfig(n_chips=1), ghz(2.0), seed=2,
                      instructions_per_thread=FAST)


class TestTracing:
    def test_result_matches_untraced(self, cg_trace):
        from repro.perfsim import simulate_npb
        res, _ = cg_trace
        plain = simulate_npb("cg", SystemConfig(n_chips=1), ghz(2.0),
                             seed=2, instructions_per_thread=FAST)
        assert res.exec_time_s == pytest.approx(plain.exec_time_s)

    def test_events_cover_all_threads(self, cg_trace):
        _, trace = cg_trace
        for t in range(trace.threads):
            assert trace.of_thread(t)

    def test_events_time_ordered_per_thread(self, cg_trace):
        _, trace = cg_trace
        for t in range(trace.threads):
            evs = trace.of_thread(t)
            assert all(a.start_s <= b.start_s
                       for a, b in zip(evs, evs[1:]))

    def test_kind_totals_match_result(self, cg_trace):
        res, trace = cg_trace
        totals = trace.time_by_kind()
        assert totals["compute"] == pytest.approx(res.compute_s, rel=1e-6)
        assert totals["stall"] == pytest.approx(res.stall_s, rel=1e-6)

    def test_cg_is_stall_dominated(self, cg_trace):
        _, trace = cg_trace
        totals = trace.time_by_kind()
        assert totals["stall"] > totals["compute"]

    def test_ep_is_compute_dominated(self):
        _, trace = traced_run("ep", SystemConfig(n_chips=1), ghz(2.0),
                              seed=2, instructions_per_thread=FAST)
        totals = trace.time_by_kind()
        assert totals["compute"] > totals["stall"]

    def test_gantt_shape(self, cg_trace):
        _, trace = cg_trace
        art = trace.gantt(width=40, max_threads=2)
        lines = art.splitlines()
        assert len(lines) == 2
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "s" in art   # stalls visible for CG

    def test_end_time_positive(self, cg_trace):
        _, trace = cg_trace
        assert trace.end_s() > 0


class TestPareto:
    @pytest.fixture(scope="class")
    def points(self):
        return evaluate_designs("high-frequency-cmp", (1, 2, 4, 6, 8))

    def test_infeasible_designs_dropped(self, points):
        # Air cannot hold an 8-chip high-frequency stack.
        assert not any(p.cooling == "air" and p.n_chips == 8
                       for p in points)

    def test_frontier_is_nondominated(self, points):
        frontier = pareto_frontier(points)
        for p in frontier:
            assert not any(q.dominates(p) for q in points)

    def test_frontier_sorted_by_throughput(self, points):
        frontier = pareto_frontier(points)
        thr = [p.throughput for p in frontier]
        assert thr == sorted(thr)

    def test_water_owns_the_top(self, points):
        """The highest-throughput frontier design is water-cooled —
        the paper's thesis as a Pareto statement."""
        frontier = pareto_frontier(points)
        assert frontier[-1].cooling == "water"

    def test_frontier_share_counts(self, points):
        share = frontier_share(points)
        assert sum(share.values()) == len(pareto_frontier(points))
        assert share.get("water", 0) >= 1

    def test_dominates_semantics(self):
        a = DesignPoint("water", 2, 2.0, 10.0, 100.0)
        b = DesignPoint("air", 2, 1.0, 5.0, 120.0)
        c = DesignPoint("oil", 2, 1.5, 10.0, 100.0)
        assert a.dominates(b)
        assert not a.dominates(c)   # equal on both axes
        assert not b.dominates(a)

    def test_empty_heights_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_designs("high-frequency-cmp", ())

    def test_unknown_cooling_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_designs("high-frequency-cmp", (1,),
                             coolings=("peltier",))
