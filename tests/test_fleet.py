"""The fleet simulator: determinism, conservation, policies, serving.

The load-bearing guarantees pinned here:

* event-queue ordering is total and explicit — time, then kind rank
  (arrival < step < stop), then insertion sequence;
* the event log (and its digest) is byte-identical across same-seed
  runs, and the campaign document is byte-identical at every worker
  count;
* energy conservation: generated == removed + stored within 1e-6
  relative, across every policy and seed (property test);
* the ambient-shift identity the DTM fast path rests on — package
  temperatures are *exactly* linear in the water temperature — holds
  against a full model solve at a shifted ambient;
* the dynamic tank converges to :meth:`repro.cooling.tank.TankConfig.
  bulk_water_temp_c` at steady state with a perfect exchanger;
* the shared :class:`~repro.cooling.accounting.EnergyAccount` ledger
  reconciles the fleet's PUE with :mod:`repro.cooling.pue`;
* thermal-aware placement beats round-robin on sustained throughput
  in the coupled, stall-prone regime;
* fleet scenarios ride the serve broker: routing on the ``"kind"``
  tag, coalescing/caching by config hash, ``fleet.*`` metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.cooling import (
    EnergyAccount,
    facility_account,
    pue_from_overheads,
    wall_energy_j,
)
from repro.cooling.pue import FACILITIES
from repro.cooling.tank import TankConfig
from repro.errors import ConfigurationError
from repro.fleet import (
    Event,
    EventQueue,
    FleetConfig,
    FleetScenario,
    POLICY_NAMES,
    BoardView,
    WorkloadConfig,
    build_board_ladder,
    canonical_event_line,
    generate_arrivals,
    get_policy,
    results_json,
    run_scenarios,
    simulate,
)

# ---------------------------------------------------------------------------
# Shared scenarios (small and fast; module-scoped results where reused)
# ---------------------------------------------------------------------------

SMALL = FleetScenario(
    fleet=FleetConfig(n_tanks=3, boards_per_tank=4),
    workload=WorkloadConfig(rate_per_s=0.3, work_gcycles=400.0),
    policy="thermal-aware", seed=11, duration_s=1800.0,
)

#: Hot, weakly-exchanged, strongly-coupled plant: the regime where
#: placement decides whether center tanks stall (tuned so round-robin
#: trips DTM stalls and falls behind while thermal-aware keeps up).
STALL_PRONE = FleetScenario(
    fleet=FleetConfig(n_tanks=8, boards_per_tank=16,
                      supply_temp_c=58.0, exchange_flow_m3_s=5e-5,
                      tank_volume_m3=0.1),
    workload=WorkloadConfig(rate_per_s=0.15, work_gcycles=600.0),
    policy="thermal-aware", seed=7, duration_s=3 * 3600.0,
)


# ---------------------------------------------------------------------------
# Events: explicit tie-breaking (satellite: event-queue determinism)
# ---------------------------------------------------------------------------


class TestEventQueue:
    def test_orders_by_time_first(self):
        q = EventQueue()
        q.push(Event(200, "arrival"))
        q.push(Event(100, "stop"))
        assert [e.time_us for e in q.drain()] == [100, 200]

    def test_kind_rank_breaks_time_ties(self):
        """At one instant: arrivals land, then the step runs, then stop."""
        q = EventQueue()
        q.push(Event(50, "stop"))
        q.push(Event(50, "step", 0))
        q.push(Event(50, "arrival"))
        assert [e.kind for e in q.drain()] == ["arrival", "step", "stop"]

    def test_sequence_breaks_kind_ties_fifo(self):
        q = EventQueue()
        for i in range(5):
            q.push(Event(7, "arrival", i))
        assert [e.payload for e in q.drain()] == [0, 1, 2, 3, 4]

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q
        q.push(Event(3, "step", 0))
        assert len(q) == 1 and q.peek_time_us() == 3

    def test_rejects_bad_events(self):
        with pytest.raises(ConfigurationError):
            Event(-1, "arrival")
        with pytest.raises(ConfigurationError):
            Event(0, "nonsense")

    def test_canonical_line_is_key_sorted_and_compact(self):
        line = canonical_event_line({"b": 1, "a": {"d": 2, "c": 3}})
        assert line == '{"a":{"c":3,"d":2},"b":1}'


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


class TestWorkload:
    def test_same_seed_same_arrivals(self):
        wl = WorkloadConfig(rate_per_s=1.0)
        a = generate_arrivals(wl, 5, 600.0)
        b = generate_arrivals(wl, 5, 600.0)
        assert a == b
        assert generate_arrivals(wl, 6, 600.0) != a

    def test_arrivals_sorted_and_inside_horizon(self):
        jobs = generate_arrivals(WorkloadConfig(rate_per_s=2.0), 1,
                                 300.0)
        times = [j.time_us for j in jobs]
        assert times == sorted(times)
        assert all(0 <= t < 300_000_000 for t in times)

    def test_max_jobs_caps_generation(self):
        wl = WorkloadConfig(rate_per_s=10.0, max_jobs=7)
        assert len(generate_arrivals(wl, 0, 3600.0)) == 7

    def test_trace_kind_round_trips(self):
        wl = WorkloadConfig(kind="trace",
                            trace=((0.0, 100.0), (5.5, 250.0)))
        again = WorkloadConfig.from_dict(wl.to_dict())
        assert again == wl
        jobs = generate_arrivals(wl, 0, 10.0)
        assert [(j.time_us, j.work_gcycles) for j in jobs] == [
            (0, 100.0), (5_500_000, 250.0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(work_jitter=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(kind="trace", trace=())
        with pytest.raises(ConfigurationError):
            WorkloadConfig(kind="trace", trace=((5.0, 1.0), (1.0, 1.0)))
        with pytest.raises(ConfigurationError, match="unknown workload"):
            WorkloadConfig.from_dict({"kind": "rate", "rps": 2})


# ---------------------------------------------------------------------------
# Model: validation and the strict wire form
# ---------------------------------------------------------------------------


class TestModel:
    def test_config_round_trips(self):
        cfg = FleetConfig(n_tanks=2, boards_per_tank=3,
                          threshold_c=70.0, reuse_fraction=0.4)
        assert FleetConfig.from_dict(cfg.to_dict()) == cfg

    def test_scenario_round_trips_tagged(self):
        d = STALL_PRONE.to_dict()
        assert d["kind"] == "fleet"
        assert FleetScenario.from_dict(d) == STALL_PRONE

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="n_tankss"):
            FleetConfig.from_dict({"n_tankss": 2})
        with pytest.raises(ConfigurationError, match="polcy"):
            FleetScenario.from_dict({"kind": "fleet", "polcy": "x"})
        with pytest.raises(ConfigurationError, match="kind"):
            FleetScenario.from_dict({"kind": "experiment"})

    def test_euler_stability_guard(self):
        with pytest.raises(ConfigurationError, match="time constant"):
            FleetConfig(step_s=3600.0, tank_volume_m3=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(n_tanks=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(chip="not-a-chip")
        with pytest.raises(ConfigurationError):
            FleetConfig(coupling=1.0)
        with pytest.raises(ConfigurationError):
            FleetScenario(policy="hottest-first")
        with pytest.raises(ConfigurationError):
            FleetScenario(duration_s=1.0)  # shorter than one step

    def test_with_policy(self):
        assert SMALL.with_policy("round-robin").policy == "round-robin"


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


def _view(board, running=0, f=1.5, headroom=10.0, tank=None):
    return BoardView(board=board, tank=tank if tank is not None else board,
                     running=running, free_slots=1, f_ghz=f,
                     headroom_c=headroom)


class TestPolicies:
    def test_registry(self):
        assert set(POLICY_NAMES) == {"round-robin", "least-loaded",
                                     "thermal-aware"}
        with pytest.raises(ConfigurationError, match="unknown policy"):
            get_policy("hottest-first")

    def test_round_robin_rotates(self):
        p = get_policy("round-robin")
        views = [_view(0), _view(1), _view(2)]
        picks = [p.select(views).board for _ in range(4)]
        assert picks == [0, 1, 2, 0]

    def test_round_robin_skips_missing_boards(self):
        p = get_policy("round-robin")
        p.select([_view(0), _view(1), _view(2)])  # cursor -> 1
        assert p.select([_view(0), _view(2)]).board == 2

    def test_least_loaded_picks_fewest_running(self):
        p = get_policy("least-loaded")
        assert p.select([_view(0, running=2), _view(1, running=1),
                         _view(2, running=1)]).board == 1

    def test_thermal_aware_picks_most_headroom(self):
        p = get_policy("thermal-aware")
        assert p.select([_view(0, headroom=2.0), _view(1, headroom=9.0),
                         _view(2, headroom=9.0, running=1)]).board == 1


# ---------------------------------------------------------------------------
# The DTM fast path: ladder + ambient-shift identity
# ---------------------------------------------------------------------------


class TestBoardLadder:
    def test_step_search_matches_linear_scan(self):
        ladder = build_board_ladder(SMALL.fleet)
        for water in (0.0, 20.0, 35.0, 50.0, 64.9, 67.0, 67.2, 90.0):
            feasible = [i for i, mw in enumerate(ladder.max_water_c)
                        if mw >= water]
            expected = feasible[-1] if feasible else None
            assert ladder.step_for_water(water) == expected

    def test_stall_point_is_lowest_step(self):
        ladder = build_board_ladder(SMALL.fleet)
        assert ladder.stall_water_c == ladder.max_water_c[0]
        assert ladder.step_for_water(ladder.stall_water_c) == 0
        assert ladder.step_for_water(ladder.stall_water_c + 1e-9) is None

    def test_ambient_shift_identity_against_full_solve(self, lp_water_4,
                                                        fast_params):
        """T(P, water) == T(P, ref) + (water - ref), exactly.

        The simulator's per-step DTM decision rests on this identity;
        here it is checked against an honest second model solved at a
        shifted ambient, not against the simulator's own arithmetic.
        """
        from dataclasses import replace

        from repro.cooling.options import get_cooling
        from repro.power.processors import get_chip
        from repro.stack.chipstack import StackConfig
        from repro.thermal.hotspot import ThermalModel

        f_hz = 1.5e9
        shift = 17.0
        base = lp_water_4.max_temperature_c(f_hz)
        shifted_model = ThermalModel(
            StackConfig(chip=get_chip("low-power-cmp"), n_chips=4),
            get_cooling("water"),
            replace(fast_params, ambient_c=fast_params.ambient_c + shift),
        )
        shifted = shifted_model.max_temperature_c(f_hz)
        assert shifted == pytest.approx(base + shift, abs=1e-6)

    def test_ladder_threshold_consistency(self):
        """At water == max_water_c[s], step s's hotspot sits exactly at
        the DTM threshold (the defining property of the table)."""
        cfg = SMALL.fleet
        ladder = build_board_ladder(cfg)
        threshold = cfg.effective_threshold_c()
        for ref_t, max_w in zip(ladder.ref_max_temp_c,
                                ladder.max_water_c):
            assert ref_t + (max_w - ladder.ref_ambient_c) == \
                pytest.approx(threshold, abs=1e-9)


# ---------------------------------------------------------------------------
# Simulator: determinism, conservation, physics
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_byte_identical_event_log(self, tmp_path):
        """Satellite guarantee: two same-seed runs produce the same
        event-log bytes (and the same digest, and the same result)."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        results = []
        for p in paths:
            with open(p, "w", encoding="utf-8") as fh:
                results.append(simulate(SMALL, events_file=fh,
                                         keep_events=True))
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert results[0].events == results[1].events
        assert results[0].event_digest == results[1].event_digest
        assert results[0].to_json() == results[1].to_json()

    def test_different_seed_different_log(self):
        from dataclasses import replace
        a = simulate(SMALL)
        b = simulate(replace(SMALL, seed=SMALL.seed + 1))
        assert a.event_digest != b.event_digest

    def test_streamed_log_matches_kept_events(self, tmp_path):
        p = tmp_path / "ev.jsonl"
        with open(p, "w", encoding="utf-8") as fh:
            r = simulate(SMALL, events_file=fh, keep_events=True)
        lines = p.read_text(encoding="utf-8").splitlines()
        assert tuple(lines) == r.events

    def test_worker_count_byte_identity(self):
        """Satellite guarantee: the campaign document is byte-identical
        serial, 2-way, and 4-way parallel."""
        scenarios = [SMALL.with_policy(p) for p in POLICY_NAMES]
        docs = {
            workers: results_json(run_scenarios(scenarios,
                                                workers=workers))
            for workers in (None, 2, 4)
        }
        assert docs[None] == docs[2] == docs[4]


class TestConservation:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_energy_conserved_every_policy_and_seed(self, policy, seed):
        """Satellite property test: generated == removed + stored to
        within 1e-6 relative, whatever the policy or seed."""
        from dataclasses import replace
        r = simulate(replace(SMALL, policy=policy, seed=seed))
        assert r.conservation_relative_residual < 1e-6
        assert r.generated_j > 0

    def test_account_reconciles_with_ledger(self):
        r = simulate(SMALL)
        a = r.account
        assert a.it_energy_j == pytest.approx(r.generated_j)
        duration = r.duration_s
        assert a.cooling_energy_j == pytest.approx(
            SMALL.fleet.n_tanks * SMALL.fleet.pump_power_w * duration)
        assert a.pue == pytest.approx(
            (a.it_energy_j + a.cooling_energy_j + a.other_energy_j)
            / a.it_energy_j)

    def test_job_bookkeeping_invariants(self):
        r = simulate(SMALL)
        assert (r.jobs_completed + r.jobs_running_end
                + r.jobs_pending_end) == r.jobs_arrived
        assert r.jobs_dispatched == r.jobs_completed + r.jobs_running_end
        assert 0.0 < r.completed_work_gcycles <= r.work_done_gcycles


class TestTankPhysics:
    def test_steady_state_matches_static_tank_model(self):
        """With a perfect exchanger, zero coupling, and constant load
        the dynamic tank must settle on the closed-form
        :meth:`TankConfig.bulk_water_temp_c`."""
        fleet = FleetConfig(
            n_tanks=1, boards_per_tank=4, threshold_c=500.0,
            exchanger_effectiveness=1.0, coupling=0.0,
            tank_volume_m3=0.05, exchange_flow_m3_s=2e-4,
            supply_temp_c=25.0, step_s=20.0,
        )
        # one everlasting job per board: constant top-step power
        workload = WorkloadConfig(kind="trace",
                                  trace=tuple((0.0, 1e9)
                                              for _ in range(4)))
        r = simulate(FleetScenario(fleet=fleet, workload=workload,
                                   policy="least-loaded", seed=0,
                                   duration_s=4 * 3600.0))
        ladder = build_board_ladder(fleet)
        board_w = ladder.per_job_power_w[-1] + fleet.idle_power_w
        tank = TankConfig(inlet_temp_c=25.0, exchange_flow_m3_s=2e-4,
                          board_power_w=board_w)
        assert r.final_water_temp_c[0] == pytest.approx(
            tank.bulk_water_temp_c(4), rel=1e-9)

    def test_coupling_makes_center_tanks_hotter(self):
        """The loop signature: interior tanks see neighbor heat from
        two sides and run warmer than the row ends under uniform load."""
        from dataclasses import replace
        r = simulate(replace(SMALL, policy="round-robin",
                             duration_s=7200.0))
        peaks = r.peak_water_temp_c
        center = max(peaks[1:-1])
        assert center > peaks[0]
        assert center > peaks[-1]

    def test_hotter_supply_runs_slower(self):
        """Hotter supply water -> lower DTM steps -> less work done
        (the warm-water-vs-performance trade the knob exists for)."""
        from dataclasses import replace
        cool = simulate(SMALL)
        hot = simulate(replace(
            SMALL, fleet=replace(SMALL.fleet, supply_temp_c=55.0)))
        assert hot.max_water_temp_c > cool.max_water_temp_c
        assert hot.throughput_gcps < cool.throughput_gcps


class TestPolicyComparison:
    def test_thermal_aware_beats_round_robin_when_stalls_matter(self):
        """Tentpole claim: in the hot, coupled, stall-prone regime the
        thermal-aware policy sustains more throughput than round-robin
        at equal offered load — because it routes work away from tanks
        the coolant loop has already degraded."""
        ta = simulate(STALL_PRONE)
        rr = simulate(STALL_PRONE.with_policy("round-robin"))
        assert ta.throughput_gcps > rr.throughput_gcps
        assert ta.stalled_board_steps < rr.stalled_board_steps
        assert ta.jobs_pending_end < rr.jobs_pending_end
        # same plant, same arrivals: energy within a few percent — the
        # win is work per joule, not joules avoided
        assert ta.account.total_energy_j == pytest.approx(
            rr.account.total_energy_j, rel=0.05)
        assert ta.work_per_mj > rr.work_per_mj


# ---------------------------------------------------------------------------
# Accounting satellite: one ledger for pue.py, energy.py, and the fleet
# ---------------------------------------------------------------------------


class TestAccounting:
    def test_pue_from_overheads(self):
        assert pue_from_overheads(0.5, 0.07) == pytest.approx(1.57)
        with pytest.raises(ConfigurationError):
            pue_from_overheads(-0.1, 0.0)

    def test_wall_energy(self):
        assert wall_energy_j(100.0, 1.25) == pytest.approx(125.0)
        with pytest.raises(ConfigurationError):
            wall_energy_j(100.0, 0.9)
        with pytest.raises(ConfigurationError):
            wall_energy_j(-1.0, 1.2)

    def test_account_ratios_and_addition(self):
        a = EnergyAccount(it_energy_j=100.0, cooling_energy_j=30.0,
                          other_energy_j=10.0, reused_energy_j=20.0)
        assert a.total_energy_j == pytest.approx(140.0)
        assert a.pue == pytest.approx(1.4)
        assert a.ere == pytest.approx(1.2)
        both = a + a
        assert both.pue == pytest.approx(a.pue)
        assert both.it_energy_j == pytest.approx(200.0)
        with pytest.raises(ConfigurationError):
            EnergyAccount(it_energy_j=0.0).pue
        with pytest.raises(ConfigurationError):
            EnergyAccount(it_energy_j=-1.0)

    def test_account_to_dict_includes_ratios_when_defined(self):
        d = EnergyAccount(it_energy_j=10.0, cooling_energy_j=5.0).to_dict()
        assert d["pue"] == pytest.approx(1.5)
        assert "pue" not in EnergyAccount(it_energy_j=0.0).to_dict()

    @pytest.mark.parametrize("name", sorted(FACILITIES))
    def test_facility_account_reconciles_with_pue(self, name):
        """The unified ledger and the facility styles agree exactly."""
        facility = FACILITIES[name]
        assert facility_account(1.0e9, facility).pue == pytest.approx(
            facility.pue(), rel=1e-12)

    def test_fleet_pue_is_the_overhead_formula(self):
        """The simulated account's PUE equals the stage-fraction form
        computed from what the simulation actually spent."""
        r = simulate(SMALL)
        a = r.account
        assert a.pue == pytest.approx(pue_from_overheads(
            a.cooling_energy_j / a.it_energy_j,
            a.other_energy_j / a.it_energy_j))

    def test_reuse_credits_ere_not_pue(self):
        from dataclasses import replace
        r = simulate(replace(
            SMALL, fleet=replace(SMALL.fleet, reuse_fraction=0.5)))
        base = simulate(SMALL)
        assert r.account.pue == pytest.approx(base.account.pue)
        assert r.account.ere < r.account.pue


# ---------------------------------------------------------------------------
# Serving fleet scenarios through the broker
# ---------------------------------------------------------------------------


TINY = FleetScenario(
    fleet=FleetConfig(n_tanks=2, boards_per_tank=3),
    workload=WorkloadConfig(rate_per_s=0.2),
    policy="thermal-aware", seed=5, duration_s=600.0,
)


class TestServeFleet:
    def test_submitted_result_identical_to_direct_call(self):
        from repro.serve import Broker, BrokerConfig

        direct = simulate(TINY)
        with Broker(BrokerConfig(workers=1)) as broker:
            job = broker.submit(TINY.to_dict())
            outcome = job.wait(timeout=60)
        assert outcome.rung == "full" and not outcome.degraded
        assert outcome.result.to_json() == direct.to_json()

    def test_fleet_metrics_and_cache_hit(self):
        from repro.obs import get_registry
        from repro.serve import Broker, BrokerConfig

        reg = get_registry()
        req0 = reg.counter("fleet.requests_total").value
        done0 = reg.counter("fleet.completed_total").value
        with Broker(BrokerConfig(workers=1)) as broker:
            first = broker.submit(TINY.to_dict())
            first.wait(timeout=60)
            second = broker.submit(TINY)       # object form, same hash
            assert second.wait(timeout=60) is first.wait(timeout=60)
            assert second.from_cache
        assert reg.counter("fleet.requests_total").value == req0 + 2
        assert reg.counter("fleet.completed_total").value == done0 + 1

    def test_spec_hash_covers_fleet_scenarios(self):
        from repro.serve import spec_hash

        assert spec_hash(TINY) == spec_hash(TINY.to_dict())
        assert spec_hash(TINY) != spec_hash(
            TINY.with_policy("round-robin"))

    def test_result_to_dict_ducks_fleet_results(self):
        from repro.serve.client import result_to_dict

        r = simulate(TINY)
        assert result_to_dict(r) == r.to_dict()

    def test_process_pool_serves_fleet(self):
        from repro.serve import Broker, BrokerConfig

        direct = simulate(TINY)
        with Broker(BrokerConfig(workers=2,
                                 use_processes=True)) as broker:
            outcome = broker.submit(TINY.to_dict()).wait(timeout=120)
        assert outcome.result.to_json() == direct.to_json()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFleetCli:
    def test_run_writes_result_and_events(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        events = tmp_path / "events.jsonl"
        rc = main(["fleet", "run", "--tanks", "2", "--boards", "3",
                   "--hours", "0.25", "--rate", "0.2", "--seed", "5",
                   "--out", str(out), "--events-out", str(events)])
        assert rc == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["scenario"]["kind"] == "fleet"
        assert doc["event_digest"]
        lines = events.read_text(encoding="utf-8").splitlines()
        assert all(json.loads(line) for line in lines)
        assert "throughput" in capsys.readouterr().out

    def test_sweep_compares_policies(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        rc = main(["fleet", "sweep", "--tanks", "2", "--boards", "3",
                   "--hours", "0.25", "--rate", "0.2", "--seeds", "1",
                   "--workers", "2", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["kind"] == "fleet-campaign"
        assert len(doc["results"]) == len(POLICY_NAMES)
        printed = capsys.readouterr().out
        for name in POLICY_NAMES:
            assert name in printed
