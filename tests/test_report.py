"""Tests for the programmatic validation report (fast sections only)."""

from __future__ import annotations

import pytest

from repro.analysis.report import (
    _facility_report,
    _fig4_report,
    _reliability_report,
    _rotation_report,
)


class TestReportSections:
    def test_fig4_section_all_pass(self):
        rep = _fig4_report()
        assert rep.passed == rep.total == 4

    def test_facility_section_all_pass(self):
        rep = _facility_report()
        assert rep.passed == rep.total == 2

    def test_reliability_section_all_pass(self):
        rep = _reliability_report()
        assert rep.passed == rep.total

    def test_rotation_section_all_pass(self):
        rep = _rotation_report()
        assert rep.passed == rep.total == 2

    def test_render_contains_verdicts(self):
        rep = _fig4_report()
        text = rep.render()
        assert "PASS" in text
        assert "Fig. 4" in text
        assert f"{rep.passed}/{rep.total}" in text
