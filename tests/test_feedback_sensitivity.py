"""Tests for the leakage-feedback loop and the sensitivity sweeps."""

from __future__ import annotations

import pytest

from repro.cooling import get_cooling
from repro.core.feedback import (
    FeedbackResult,
    max_frequency_with_feedback,
    solve_with_leakage_feedback,
)
from repro.core.freqopt import max_frequency
from repro.errors import SimulationError, ThermalModelError
from repro.perfsim.sensitivity import (
    controller_count_sweep,
    dram_latency_sweep,
    headline_robustness,
    router_pipeline_sweep,
)
from repro.power import get_chip
from repro.stack import uniform_stack
from repro.thermal import ThermalModel
from repro.units import ghz


@pytest.fixture(scope="module")
def water4(fast_params):
    return ThermalModel(uniform_stack(get_chip("high-frequency-cmp"), 4),
                        get_cooling("water"), fast_params)


class TestLeakageFeedback:
    def test_converges(self, water4):
        res = solve_with_leakage_feedback(water4, ghz(3.2))
        assert isinstance(res, FeedbackResult)
        assert not res.runaway
        assert res.iterations >= 1

    def test_zero_coefficient_matches_one_shot(self, water4):
        res = solve_with_leakage_feedback(water4, ghz(3.2),
                                          coeff_per_k=0.0)
        assert res.max_temp_c == pytest.approx(res.one_shot_temp_c,
                                               abs=0.02)

    def test_cool_point_reduces_leakage(self, water4):
        """Below the 80 C anchor the fixed point is cooler than the
        paper's one-shot worst case."""
        res = solve_with_leakage_feedback(water4, ghz(2.4))
        assert res.max_temp_c < res.one_shot_temp_c

    def test_hot_point_raises_leakage(self, water4):
        """Above the anchor the fixed point is hotter."""
        res = solve_with_leakage_feedback(water4, ghz(3.6))
        if res.one_shot_temp_c > 85.0:
            assert res.max_temp_c > res.one_shot_temp_c

    def test_stronger_coefficient_bigger_effect(self, water4):
        weak = solve_with_leakage_feedback(water4, ghz(2.4),
                                           coeff_per_k=0.005)
        strong = solve_with_leakage_feedback(water4, ghz(2.4),
                                             coeff_per_k=0.03)
        assert (abs(strong.feedback_penalty_c)
                > abs(weak.feedback_penalty_c))

    def test_negative_coefficient_rejected(self, water4):
        with pytest.raises(ThermalModelError):
            solve_with_leakage_feedback(water4, ghz(2.4),
                                        coeff_per_k=-0.01)

    def test_search_never_below_paper_minus_margin(self, water4):
        paper = max_frequency(water4)
        f, res = max_frequency_with_feedback(water4)
        assert f >= paper.f_hz - 0.21e9
        assert res is not None
        assert res.max_temp_c <= water4.stack.chip.threshold_c + 1e-6

    def test_search_infeasible_configuration(self, fast_params):
        model = ThermalModel(
            uniform_stack(get_chip("low-power-cmp"), 12),
            get_cooling("air"), fast_params)
        f, res = max_frequency_with_feedback(model)
        assert f == 0.0 and res is None

    def test_runaway_detection(self, fast_params):
        """Hot configuration + absurd coefficient must trip the runaway
        guard, not hang (runaway needs mean T above the reference)."""
        hot = ThermalModel(
            uniform_stack(get_chip("high-frequency-cmp"), 4),
            get_cooling("air"), fast_params)
        res = solve_with_leakage_feedback(hot, ghz(3.6),
                                          coeff_per_k=0.5,
                                          max_iterations=60)
        assert res.runaway
        assert res.max_temp_c > 100.0


class TestSensitivity:
    def test_dram_latency_compresses_gain(self):
        points = dram_latency_sweep((60.0, 133.0, 200.0), n_chips=2)
        rels = [p.mean_relative_time for p in points]
        # Longer fixed memory time -> relative time closer to 1.
        assert rels[0] < rels[1] < rels[2] < 1.0

    def test_router_depth_mild(self):
        points = router_pipeline_sweep((2, 3, 5), n_chips=2)
        rels = [p.mean_relative_time for p in points]
        # Clocked NoC cycles cancel in the ratio to first order.
        assert max(rels) - min(rels) < 0.02

    def test_controller_count_matters_little_at_this_load(self):
        points = controller_count_sweep((1, 4), n_chips=2)
        rels = [p.mean_relative_time for p in points]
        assert all(0.5 < r < 1.0 for r in rels)

    def test_headline_robustness_table(self):
        table = headline_robustness((80.0, 133.0))
        assert set(table) == {80.0, 133.0}
        assert table[80.0] > table[133.0] > 0.0

    def test_empty_sweeps_rejected(self):
        with pytest.raises(SimulationError):
            dram_latency_sweep(())
        with pytest.raises(SimulationError):
            router_pipeline_sweep(())
        with pytest.raises(SimulationError):
            controller_count_sweep(())
