"""Tests for the NoC: topology, routing, router timing, contention."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.perfsim.noc import (
    DEFAULT_ROUTER,
    MeshNetwork,
    MeshTopology,
    NodeId,
    RouterParams,
    expected_noc_cycles,
    vc_for_class,
    xy_route,
)
from repro.perfsim.noc.routing import links_of


class TestTopology:
    def test_table1_mesh(self):
        topo = MeshTopology()
        assert topo.width == 4 and topo.height == 4
        assert topo.nodes_per_chip == 16

    def test_stacked_node_count(self):
        assert MeshTopology(4, 4, 6).num_nodes == 96

    def test_node_validation(self):
        topo = MeshTopology(4, 4, 2)
        assert topo.node(1, 3, 3) == NodeId(1, 3, 3)
        with pytest.raises(ConfigurationError):
            topo.node(2, 0, 0)
        with pytest.raises(ConfigurationError):
            topo.node(0, 4, 0)

    def test_hop_distance_manhattan_plus_z(self):
        topo = MeshTopology(4, 4, 4)
        assert topo.hop_distance(NodeId(0, 0, 0), NodeId(3, 3, 3)) == 9

    def test_all_nodes_unique(self):
        topo = MeshTopology(3, 3, 2)
        nodes = topo.all_nodes()
        assert len(nodes) == len(set(nodes)) == 18

    def test_tile_index_row_major(self):
        topo = MeshTopology()
        assert topo.tile_index(NodeId(0, 2, 1)) == 6

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 4, 1)


class TestRouting:
    def test_route_endpoints(self):
        topo = MeshTopology(4, 4, 2)
        path = xy_route(topo, NodeId(0, 0, 0), NodeId(1, 3, 2))
        assert path[0] == NodeId(0, 0, 0)
        assert path[-1] == NodeId(1, 3, 2)

    def test_route_x_then_y_then_z(self):
        topo = MeshTopology(4, 4, 2)
        path = xy_route(topo, NodeId(0, 0, 0), NodeId(1, 2, 1))
        # X moves first...
        assert path[1] == NodeId(0, 1, 0)
        # ...then Y, then the tier crossing is last.
        assert path[-2].chip == 0

    def test_self_route(self):
        topo = MeshTopology()
        assert xy_route(topo, NodeId(0, 1, 1), NodeId(0, 1, 1)) == (
            NodeId(0, 1, 1),)

    def test_outside_node_rejected(self):
        topo = MeshTopology()
        with pytest.raises(SimulationError):
            xy_route(topo, NodeId(0, 0, 0), NodeId(1, 0, 0))

    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 2),
           st.integers(0, 3), st.integers(0, 3), st.integers(0, 2))
    @settings(max_examples=80)
    def test_route_length_property(self, x1, y1, c1, x2, y2, c2):
        topo = MeshTopology(4, 4, 3)
        src, dst = NodeId(c1, x1, y1), NodeId(c2, x2, y2)
        path = xy_route(topo, src, dst)
        assert len(path) - 1 == topo.hop_distance(src, dst)
        # Every step is one hop.
        for a, b in links_of(path):
            assert topo.hop_distance(a, b) == 1

    def test_vc_assignment(self):
        assert vc_for_class("request") == 0
        assert vc_for_class("forward") == 1
        assert vc_for_class("response") == 2
        with pytest.raises(SimulationError):
            vc_for_class("gossip")


class TestRouterParams:
    def test_table1_defaults(self):
        r = DEFAULT_ROUTER
        assert r.pipeline_stages == 3       # [RC][VSA][ST/LT]
        assert r.num_vcs == 3
        assert r.vc_buffer_flits == 5
        assert r.control_flits == 1
        assert r.data_flits == 5

    def test_zero_load_formula(self):
        r = DEFAULT_ROUTER
        # 2 hops, 5-flit data packet: 2*3 + 4 = 10 cycles.
        assert r.zero_load_cycles(2, 5) == 10
        # control packet, 1 hop: 3 cycles.
        assert r.zero_load_cycles(1, 1) == 3

    def test_zero_hops_zero_cycles(self):
        assert DEFAULT_ROUTER.zero_load_cycles(0, 5) == 0

    def test_negative_hops_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_ROUTER.zero_load_cycles(-1, 5)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RouterParams(pipeline_stages=0)
        with pytest.raises(ConfigurationError):
            RouterParams(num_vcs=0)
        with pytest.raises(ConfigurationError):
            RouterParams(data_flits=0)


class TestMeshNetwork:
    def test_zero_load_delivery(self):
        net = MeshNetwork(MeshTopology())
        src, dst = NodeId(0, 0, 0), NodeId(0, 3, 0)
        t = net.deliver(src, dst, is_data=True, depart_cycle=0.0)
        assert t == net.zero_load_cycles(src, dst, is_data=True)

    def test_self_delivery_instant(self):
        net = MeshNetwork(MeshTopology())
        assert net.deliver(NodeId(0, 1, 1), NodeId(0, 1, 1), is_data=True,
                           depart_cycle=5.0) == 5.0

    def test_contention_serializes(self):
        net = MeshNetwork(MeshTopology())
        src, dst = NodeId(0, 0, 0), NodeId(0, 1, 0)
        t1 = net.deliver(src, dst, is_data=True, depart_cycle=0.0)
        t2 = net.deliver(src, dst, is_data=True, depart_cycle=0.0)
        assert t2 > t1
        assert net.stats.total_queue_cycles > 0

    def test_disjoint_paths_no_contention(self):
        net = MeshNetwork(MeshTopology())
        t1 = net.deliver(NodeId(0, 0, 0), NodeId(0, 1, 0), is_data=True,
                         depart_cycle=0.0)
        t2 = net.deliver(NodeId(0, 0, 3), NodeId(0, 1, 3), is_data=True,
                         depart_cycle=0.0)
        assert t1 == t2

    def test_vertical_link_extra_latency(self):
        net = MeshNetwork(MeshTopology(4, 4, 2), vertical_link_cycles=4)
        flat = net.zero_load_cycles(NodeId(0, 0, 0), NodeId(0, 1, 0),
                                    is_data=False)
        vert = net.zero_load_cycles(NodeId(0, 0, 0), NodeId(1, 0, 0),
                                    is_data=False)
        assert vert == flat + 4

    def test_stats_accumulate(self):
        net = MeshNetwork(MeshTopology())
        net.deliver(NodeId(0, 0, 0), NodeId(0, 2, 2), is_data=True,
                    depart_cycle=0.0)
        net.deliver(NodeId(0, 0, 0), NodeId(0, 2, 2), is_data=False,
                    depart_cycle=100.0)
        assert net.stats.packets == 2
        assert net.stats.flits == 6
        assert net.stats.mean_latency_cycles > 0
        assert net.stats.max_latency_cycles >= net.stats.mean_latency_cycles

    def test_reset(self):
        net = MeshNetwork(MeshTopology())
        net.deliver(NodeId(0, 0, 0), NodeId(0, 1, 0), is_data=True,
                    depart_cycle=0.0)
        net.reset()
        assert net.stats.packets == 0
        t = net.deliver(NodeId(0, 0, 0), NodeId(0, 1, 0), is_data=True,
                        depart_cycle=0.0)
        assert t == net.zero_load_cycles(NodeId(0, 0, 0), NodeId(0, 1, 0),
                                         is_data=True)

    def test_mean_hop_distance_mesh4x4(self):
        # Mean Manhattan distance over distinct 4x4-mesh pairs: per axis
        # E|dx| = 1.25 including ties; excluding self pairs scales by
        # 16/15, so 2 * 1.25 * 16/15 = 8/3.
        net = MeshNetwork(MeshTopology(4, 4, 1))
        assert net.mean_hop_distance() == pytest.approx(8.0 / 3.0)

    def test_expected_cycles_3leg_exceeds_2leg(self):
        topo = MeshTopology(4, 4, 2)
        assert (expected_noc_cycles(topo, legs=3)
                > expected_noc_cycles(topo, legs=2))

    def test_expected_cycles_invalid_legs(self):
        with pytest.raises(SimulationError):
            expected_noc_cycles(MeshTopology(), legs=4)

    def test_deeper_stack_longer_paths(self):
        short = expected_noc_cycles(MeshTopology(4, 4, 1), legs=2)
        tall = expected_noc_cycles(MeshTopology(4, 4, 8), legs=2)
        assert tall > short
