"""Integration tests: the paper's published shapes, at full resolution.

These are the acceptance criteria from DESIGN.md section 5 — who wins,
by roughly what factor, where the feasibility cliffs fall — evaluated
against the calibrated default package. Deviations that are accepted
and documented in EXPERIMENTS.md are *not* asserted here.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.cosim import run_npb_comparison
from repro.core.sweeps import frequency_vs_chips, rotation_gain_c, temperature_vs_h
from repro.datasets import paper
from repro.units import ghz

COOLS = ("air", "water_pipe", "mineral_oil", "fluorinert", "water")


@pytest.fixture(scope="module")
def lp_table():
    series = frequency_vs_chips("low-power-cmp",
                                tuple(range(1, 16)), COOLS)
    return {s.cooling: s for s in series}


@pytest.fixture(scope="module")
def hf_table():
    series = frequency_vs_chips("high-frequency-cmp",
                                (1, 2, 4, 6, 8, 10, 12, 15), COOLS)
    return {s.cooling: s for s in series}


class TestFig7LowPower:
    def test_air_limit_close_to_paper(self, lp_table):
        # Paper: 4 chips; calibrated model: 4-5.
        assert 4 <= lp_table["air"].feasible_up_to() <= 5

    def test_water_pipe_limit_is_7(self, lp_table):
        assert lp_table["water_pipe"].feasible_up_to() == 7

    def test_pipe_infeasible_at_8(self, lp_table):
        assert lp_table["water_pipe"].f_ghz[7] == 0.0

    def test_oil_supports_8(self, lp_table):
        assert lp_table["mineral_oil"].f_ghz[7] > 0.0

    def test_water_deepest(self, lp_table):
        water = lp_table["water"].feasible_up_to()
        assert water >= 10
        assert water >= lp_table["mineral_oil"].feasible_up_to()

    def test_ordering_everywhere(self, lp_table):
        for i in range(15):
            seq = [lp_table[c].f_ghz[i] for c in COOLS]
            assert all(a <= b + 1e-9 for a, b in zip(seq, seq[1:]))

    def test_single_chip_everyone_reaches_cap(self, lp_table):
        for c in COOLS:
            assert lp_table[c].f_ghz[0] == pytest.approx(2.0)


class TestFig8HighFrequency:
    def test_hf_air_deeper_than_lp_air(self, lp_table, hf_table):
        # Section 3.2: the broader VFS range supports more chips.
        assert (hf_table["air"].feasible_up_to()
                >= lp_table["air"].feasible_up_to())

    def test_water_reaches_deep(self, hf_table):
        assert hf_table["water"].feasible_up_to() >= 10

    def test_pipe_supports_8_chips_hf(self, hf_table):
        # Fig. 13 normalizes the 8-chip high-frequency CMP to the pipe.
        idx = hf_table["water_pipe"].chips.index(8)
        assert hf_table["water_pipe"].f_ghz[idx] > 0.0

    def test_water_at_4_chips_above_3ghz(self, hf_table):
        idx = hf_table["water"].chips.index(4)
        assert hf_table["water"].f_ghz[idx] >= 3.0


class TestFig1XeonE5:
    @pytest.fixture(scope="class")
    def e5(self):
        series = frequency_vs_chips("xeon-e5-2667v4", (1, 2, 3, 4),
                                    ("air", "mineral_oil", "water"))
        return {s.cooling: s for s in series}

    def test_water_single_chip_max(self, e5):
        assert e5["water"].f_ghz[0] == pytest.approx(
            paper.E5_MAX_FREQ_GHZ, abs=0.21)

    def test_air_shallowest(self, e5):
        assert (e5["air"].feasible_up_to()
                <= e5["mineral_oil"].feasible_up_to()
                <= e5["water"].feasible_up_to())

    def test_water_beats_oil_per_chipcount(self, e5):
        for fo, fw in zip(e5["mineral_oil"].f_ghz, e5["water"].f_ghz):
            assert fw >= fo


class TestFig17XeonPhi:
    @pytest.fixture(scope="class")
    def phi(self):
        series = frequency_vs_chips("xeon-phi-7290", (1, 2, 3, 4), COOLS)
        return {s.cooling: s for s in series}

    def test_water_single_chip_is_16(self, phi):
        assert phi["water"].f_ghz[0] == pytest.approx(
            paper.PHI_MAX_FREQ_GHZ, abs=0.11)

    def test_pipe_at_most_2_chips(self, phi):
        assert phi["water_pipe"].feasible_up_to() <= paper.PHI_MAX_CHIPS[
            "water_pipe"]

    def test_water_at_least_as_deep_as_oil(self, phi):
        assert (phi["water"].feasible_up_to()
                >= phi["mineral_oil"].feasible_up_to())


class TestFig14HSweep:
    def test_paper_shape(self):
        hs = tuple(float(h) for h in
                   (14, 50, 160, 180, 400, 800, 1200, 1600))
        s = temperature_vs_h("xeon-e5-2667v4", hs, n_chips=4)
        t = s.max_temp_c
        assert all(a > b for a, b in zip(t, t[1:]))
        # "non-negligible temperature reduction ... for h higher than
        # water" on the high-power E5 chip:
        i800 = hs.index(800.0)
        assert t[i800] - t[-1] > 2.0


class TestFig15Rotation:
    def test_flip_gain_about_13c(self):
        gain = rotation_gain_c("high-frequency-cmp", "water", ghz(3.6))
        assert gain == pytest.approx(paper.FLIP_GAIN_AT_36GHZ_C, abs=5.0)

    def test_flip_enables_36ghz_for_water(self):
        p = repro.quick_max_frequency("high-frequency-cmp", 4, "water",
                                      flip=True)
        assert p.f_ghz == pytest.approx(paper.FLIP_ENABLES_WATER_GHZ)

    def test_water_beats_air_with_and_without_flip(self):
        for flip in (False, True):
            w = repro.quick_max_frequency("high-frequency-cmp", 4,
                                          "water", flip=flip)
            a = repro.quick_max_frequency("high-frequency-cmp", 4, "air",
                                          flip=flip)
            assert w.f_hz > a.f_hz or not a.feasible


class TestFigs10to13Npb:
    @pytest.fixture(scope="class")
    def lp6(self):
        return run_npb_comparison("low-power-cmp", 6,
                                  reference="water_pipe")

    @pytest.fixture(scope="class")
    def lp8(self):
        return run_npb_comparison("low-power-cmp", 8,
                                  reference="mineral_oil")

    def test_fig10_water_wins_every_benchmark(self, lp6):
        rel = lp6.relative_times("water")
        assert all(v < 1.0 for v in rel.values())

    def test_fig10_average_in_paper_band(self, lp6):
        gain = 1.0 - lp6.average_relative("water")
        # Paper: up to 14% on average vs water pipe; accept 8-25%.
        assert 0.08 <= gain <= 0.25

    def test_fig11_pipe_is_infeasible(self, lp8):
        assert not lp8.outcome("water_pipe").feasible

    def test_fig11_water_vs_oil_about_4p5(self, lp8):
        gain = 1.0 - lp8.average_relative("water")
        assert gain == pytest.approx(paper.HEADLINE_VS_MINERAL_OIL,
                                     abs=0.03)

    def test_fig12_13_water_fastest(self):
        for n in (6, 8):
            c = run_npb_comparison("high-frequency-cmp", n,
                                   reference="water_pipe")
            for cool in ("mineral_oil", "fluorinert"):
                assert (c.average_relative("water")
                        <= c.average_relative(cool) + 1e-9)

    def test_thread_counts_match_paper(self, lp6):
        assert lp6.threads == paper.NPB_THREADS[6]


class TestHeadline:
    def test_headline_summary_signs(self):
        from repro.core.cosim import headline_summary
        h = headline_summary()
        assert h["water_vs_water_pipe_avg_reduction"] > 0.10
        assert h["water_vs_mineral_oil_avg_reduction"] == pytest.approx(
            paper.HEADLINE_VS_MINERAL_OIL, abs=0.03)
