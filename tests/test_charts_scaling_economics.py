"""Tests for the ASCII charts, thread scaling, and cooling economics."""

from __future__ import annotations

import math

import pytest

from repro.analysis.charts import ascii_chart, chart_frequency_series
from repro.cli import main
from repro.cooling.economics import (
    coolant_cost_ranking,
    coolant_fill_cost_usd,
    node_tco,
    tco_comparison,
)
from repro.errors import ConfigurationError
from repro.perfsim.scaling import parallel_efficiency_at_full, thread_scaling
from repro.thermal.coolants import get_coolant
from repro.units import ghz


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"a": ([1, 2, 3], [1.0, 2.0, 3.0])})
        assert "o = a" in out
        assert out.count("\n") > 10

    def test_multiple_series_markers(self):
        out = ascii_chart({"a": ([1, 2], [1, 2]),
                           "b": ([1, 2], [2, 1])})
        assert "o = a" in out and "x = b" in out

    def test_nonfinite_points_skipped(self):
        out = ascii_chart({"a": ([1, 2, 3], [1.0, math.nan, 3.0])})
        assert "o = a" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": ([], [])})

    def test_small_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": ([1], [1])}, width=2, height=2)

    def test_axis_labels_present(self):
        out = ascii_chart({"a": ([0, 10], [0, 5])}, x_label="chips",
                          y_label="GHz")
        assert "x: chips" in out and "y: GHz" in out

    def test_frequency_chart_drops_infeasible(self, fast_params):
        from repro.core.sweeps import frequency_vs_chips
        series = frequency_vs_chips("low-power-cmp", (1, 2, 10),
                                    ("air",), params=fast_params)
        out = chart_frequency_series(series, title="t")
        assert out.startswith("t")


class TestThreadScaling:
    def test_speedup_monotone(self):
        pts = thread_scaling("mg", 6, ghz(1.6))
        speedups = [p.speedup for p in pts]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_speedup_bounded_by_threads(self):
        for p in thread_scaling("cg", 6, ghz(1.6)):
            assert p.speedup <= p.threads + 1e-9

    def test_ep_scales_best(self):
        ep = parallel_efficiency_at_full("ep", 6, ghz(1.6))
        cg = parallel_efficiency_at_full("cg", 6, ghz(1.6))
        assert ep > cg

    def test_efficiency_definition(self):
        pts = thread_scaling("sp", 6, ghz(1.6))
        for p in pts:
            assert p.efficiency == pytest.approx(p.speedup / p.threads)

    def test_invalid_thread_count(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            thread_scaling("cg", 6, ghz(1.6), thread_counts=(99,))

    def test_paper_operating_point_reasonable(self):
        """One thread per core stays above 85 % efficiency for every
        NPB program — the paper's configuration is sane."""
        from repro.perfsim.npb import NPB_ORDER
        for name in NPB_ORDER:
            assert parallel_efficiency_at_full(name, 6, ghz(1.6)) > 0.85


class TestEconomics:
    def test_intro_cost_ranking(self):
        """The paper's intro: water cheaper than oil, far cheaper than
        fluorinert."""
        ranking = coolant_cost_ranking()
        assert (ranking["water"] < ranking["mineral_oil"]
                < ranking["fluorinert"])

    def test_fluorinert_two_orders_over_water(self):
        ranking = coolant_cost_ranking()
        assert ranking["fluorinert"] / ranking["water"] >= 50

    def test_fill_cost_scales_with_volume(self):
        w = get_coolant("water")
        assert coolant_fill_cost_usd(w, 2000.0) == pytest.approx(
            2 * coolant_fill_cost_usd(w, 1000.0))

    def test_invalid_volume(self):
        with pytest.raises(ConfigurationError):
            coolant_fill_cost_usd(get_coolant("water"), 0.0)

    def test_water_lowest_energy_cost(self):
        tco = tco_comparison()
        assert tco["water"].energy_usd == min(
            t.energy_usd for t in tco.values())

    def test_air_highest_energy_cost(self):
        tco = tco_comparison()
        assert tco["air"].energy_usd == max(
            t.energy_usd for t in tco.values())

    def test_coating_in_water_capex(self):
        tco = tco_comparison()
        assert tco["water"].capex_usd > tco["mineral_oil"].capex_usd

    def test_longer_life_favors_water(self):
        """Energy dominates over time, so water's total overtakes oil's
        as the service life grows."""
        short = {n: node_tco(n, years=2.0).total_usd
                 for n in ("water", "mineral_oil")}
        long = {n: node_tco(n, years=10.0).total_usd
                for n in ("water", "mineral_oil")}
        gap_short = short["water"] - short["mineral_oil"]
        gap_long = long["water"] - long["mineral_oil"]
        assert gap_long < gap_short

    def test_unknown_cooling(self):
        with pytest.raises(ConfigurationError):
            node_tco("peltier")


class TestSpecCli:
    def test_spec_command(self, capsys):
        rc = main(["spec", '{"chip": "low-power-cmp", "n_chips": 1, '
                           '"cooling": "water", "benchmarks": ["ep"]}'])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2.0 GHz" in out and "EP" in out

    def test_spec_infeasible_exit(self, capsys):
        rc = main(["spec", '{"chip": "low-power-cmp", "n_chips": 14, '
                           '"cooling": "air"}'])
        assert rc == 1
        assert "infeasible" in capsys.readouterr().out
