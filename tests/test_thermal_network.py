"""Tests for the compact thermal network: assembly, solve, conservation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SingularNetworkError, ThermalModelError
from repro.floorplan.geometry import Rect
from repro.thermal.layers import Boundary, GridLayer, Interface, overlap_matrix
from repro.thermal.materials import COPPER, SILICON, TIM
from repro.thermal.network import ThermalNetwork


def slab(name="slab", side=0.01, t=1e-3, mat=SILICON, n=4, **kw):
    return GridLayer(name=name, outline=Rect(0, 0, side, side),
                     thickness_m=t, material=mat, nx=n, ny=n, **kw)


def simple_network(h=100.0, t_amb=25.0, n=4):
    layer = slab(n=n)
    b = Boundary(layer="slab", face="top", h_w_m2k=h, t_ambient_c=t_amb)
    return ThermalNetwork([layer], [], [b])


class TestOverlapMatrix:
    def test_identical_grids(self):
        e = np.array([0.0, 1.0, 2.0])
        o = overlap_matrix(e, e)
        np.testing.assert_allclose(o, np.diag([1.0, 1.0]))

    def test_offset_grids(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.5, 1.5])
        assert overlap_matrix(a, b)[0, 0] == pytest.approx(0.5)

    def test_disjoint(self):
        a = np.array([0.0, 1.0])
        b = np.array([2.0, 3.0])
        assert overlap_matrix(a, b)[0, 0] == 0.0

    def test_total_overlap_conserved(self):
        a = np.linspace(0, 1, 5)
        b = np.linspace(0, 1, 8)
        assert overlap_matrix(a, b).sum() == pytest.approx(1.0)


class TestValidation:
    def test_no_boundary_rejected(self):
        with pytest.raises(SingularNetworkError):
            ThermalNetwork([slab()], [], [])

    def test_duplicate_layers_rejected(self):
        with pytest.raises(ThermalModelError, match="duplicate"):
            ThermalNetwork([slab(), slab()], [],
                           [Boundary("slab", "top", 10.0)])

    def test_unknown_interface_layer_rejected(self):
        with pytest.raises(ThermalModelError, match="unknown layer"):
            ThermalNetwork([slab()], [Interface("slab", "ghost", 1e-5)],
                           [Boundary("slab", "top", 10.0)])

    def test_unknown_boundary_layer_rejected(self):
        with pytest.raises(ThermalModelError, match="unknown layer"):
            ThermalNetwork([slab()], [], [Boundary("ghost", "top", 10.0)])

    def test_disconnected_island_detected(self):
        # Second layer has no interface and no boundary: singular.
        a = slab("a")
        b = slab("b")
        with pytest.raises(SingularNetworkError):
            net = ThermalNetwork([a, b], [],
                                 [Boundary("a", "top", 10.0)])
            net.solve({"a": np.ones((4, 4))})

    def test_bad_face_rejected(self):
        with pytest.raises(ThermalModelError, match="face"):
            Boundary("slab", "left", 10.0)

    def test_self_interface_rejected(self):
        with pytest.raises(ThermalModelError):
            Interface("a", "a", 1e-5)

    def test_negative_interface_resistance_rejected(self):
        with pytest.raises(ThermalModelError):
            Interface("a", "b", -1e-5)


class TestSingleSlab:
    def test_uniform_power_analytic(self):
        """Uniform heating of a slab with top convection.

        T = T_amb + P * (R_half + R_conv); the grid must match the
        0-D analytic answer exactly for uniform inputs.
        """
        h = 250.0
        net = simple_network(h=h)
        la = net.layers[0]
        p_total = 10.0
        pm = np.full((4, 4), p_total / 16.0)
        res = net.solve({"slab": pm})
        area = la.outline.area
        r_half = la.half_resistance_m2kw / area
        r_conv = 1.0 / (h * area)
        expected = 25.0 + p_total * (r_half + r_conv)
        np.testing.assert_allclose(res.layer("slab"), expected, rtol=1e-9)

    def test_zero_power_is_ambient(self):
        net = simple_network()
        res = net.solve({})
        np.testing.assert_allclose(res.layer("slab"), 25.0, atol=1e-9)

    def test_superposition(self):
        """The network is linear: T(P1+P2) - T_amb = sum of rises."""
        net = simple_network()
        p1 = np.zeros((4, 4)); p1[0, 0] = 5.0
        p2 = np.zeros((4, 4)); p2[3, 3] = 7.0
        t1 = net.solve({"slab": p1}).layer("slab") - 25.0
        t2 = net.solve({"slab": p2}).layer("slab") - 25.0
        t12 = net.solve({"slab": p1 + p2}).layer("slab") - 25.0
        np.testing.assert_allclose(t12, t1 + t2, rtol=1e-9)

    def test_heat_balance_exact(self):
        net = simple_network()
        pm = {"slab": np.random.default_rng(0).random((4, 4))}
        res = net.solve(pm)
        inj, ext = net.heat_balance(pm, res)
        assert ext == pytest.approx(inj, rel=1e-9)

    def test_hot_spot_is_where_power_is(self):
        net = simple_network()
        pm = np.zeros((4, 4)); pm[1, 2] = 3.0
        field = net.solve({"slab": pm}).layer("slab")
        iy, ix = np.unravel_index(np.argmax(field), field.shape)
        assert (ix, iy) == (2, 1)

    def test_more_power_hotter_everywhere(self):
        net = simple_network()
        lo = net.solve({"slab": np.full((4, 4), 0.1)}).layer("slab")
        hi = net.solve({"slab": np.full((4, 4), 0.2)}).layer("slab")
        assert np.all(hi > lo)

    def test_higher_h_cooler(self):
        pm = np.full((4, 4), 1.0)
        t_lo_h = simple_network(h=50.0).solve({"slab": pm}).max_of("slab")
        t_hi_h = simple_network(h=500.0).solve({"slab": pm}).max_of("slab")
        assert t_hi_h < t_lo_h

    def test_negative_power_rejected(self):
        net = simple_network()
        bad = np.zeros((4, 4)); bad[0, 0] = -1.0
        with pytest.raises(ThermalModelError, match="negative"):
            net.solve({"slab": bad})

    def test_wrong_shape_rejected(self):
        net = simple_network()
        with pytest.raises(ThermalModelError, match="must be"):
            net.solve({"slab": np.zeros((3, 3))})

    def test_unknown_layer_rejected(self):
        net = simple_network()
        with pytest.raises(ThermalModelError, match="no layer"):
            net.solve({"ghost": np.zeros((4, 4))})

    @given(st.floats(min_value=20.0, max_value=1500.0),
           st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation_property(self, h: float, p: float):
        net = simple_network(h=h)
        pm = {"slab": np.full((4, 4), p / 16.0)}
        res = net.solve(pm)
        inj, ext = net.heat_balance(pm, res)
        assert ext == pytest.approx(inj, rel=1e-8)


class TestTwoLayers:
    def make(self, r_int=1e-5, h=500.0):
        a = slab("a", mat=SILICON, t=5e-4)
        b = slab("b", mat=COPPER, t=1e-3)
        return ThermalNetwork(
            [a, b], [Interface("a", "b", r_int)],
            [Boundary("b", "top", h)])

    def test_series_resistance_uniform(self):
        """Uniform 1-D stack matches hand-computed series resistances."""
        net = self.make()
        area = 0.01 ** 2
        p = 8.0
        pm = np.full((4, 4), p / 16.0)
        res = net.solve({"a": pm})
        a, b = net.layers
        r = (a.half_resistance_m2kw + 1e-5 + b.half_resistance_m2kw
             + b.half_resistance_m2kw) / area + 1.0 / (500.0 * area)
        expected_a = 25.0 + p * r
        np.testing.assert_allclose(res.layer("a"), expected_a, rtol=1e-9)

    def test_lower_layer_hotter(self):
        net = self.make()
        pm = np.full((4, 4), 0.5)
        res = net.solve({"a": pm})
        assert res.max_of("a") > res.max_of("b")

    def test_bigger_interface_resistance_hotter_source(self):
        pm = np.full((4, 4), 0.5)
        t_small = self.make(r_int=1e-6).solve({"a": pm}).max_of("a")
        t_big = self.make(r_int=1e-4).solve({"a": pm}).max_of("a")
        assert t_big > t_small

    def test_mismatched_grids_conserve_energy(self):
        a = slab("a", n=5)
        b = slab("b", n=3, mat=COPPER)
        net = ThermalNetwork([a, b], [Interface("a", "b", 2e-5)],
                             [Boundary("b", "top", 300.0)])
        pm = {"a": np.random.default_rng(1).random((5, 5))}
        res = net.solve(pm)
        inj, ext = net.heat_balance(pm, res)
        assert ext == pytest.approx(inj, rel=1e-9)

    def test_non_overlapping_layers_rejected(self):
        a = slab("a")
        b = GridLayer("b", Rect(1.0, 1.0, 0.01, 0.01), 1e-3, COPPER, 4, 4)
        net = ThermalNetwork([a, b], [Interface("a", "b", 1e-5)],
                             [Boundary("b", "top", 300.0)])
        with pytest.raises(ThermalModelError, match="overlap"):
            net.solve({})

    def test_result_queries(self):
        net = self.make()
        res = net.solve({"a": np.full((4, 4), 0.5)})
        assert res.layer_names == ("a", "b")
        assert res.global_max() == res.max_over(["a", "b"])
        with pytest.raises(ThermalModelError):
            res.layer("ghost")
        with pytest.raises(ThermalModelError):
            res.max_over([])

    def test_node_index_bounds(self):
        net = self.make()
        assert net.node_index("a", 0, 0) == 0
        assert net.node_index("b", 0, 0) == 16
        with pytest.raises(ThermalModelError):
            net.node_index("a", 4, 0)

    def test_capacitance_vector_positive(self):
        net = self.make()
        caps = net.capacitance_vector()
        assert caps.shape == (32,)
        assert np.all(caps > 0)

    def test_anisotropic_lateral_conductivity(self):
        """A lateral-k override spreads a point source better."""
        def max_t(k_lat):
            a = slab("a", k_lateral_w_mk=k_lat)
            net = ThermalNetwork([a], [], [Boundary("a", "top", 100.0)])
            pm = np.zeros((4, 4)); pm[2, 2] = 4.0
            return net.solve({"a": pm}).max_of("a")
        assert max_t(1000.0) < max_t(10.0)


class TestSingularDetection:
    """Both singular-matrix detection paths, pinned independently.

    A real floating island usually trips the ``splu`` RuntimeError
    path, but on some pivot orderings the factorization "succeeds" and
    only the probe solve catches it — so each path gets its own test
    with the scipy layer stubbed.
    """

    def test_splu_exception_path(self, monkeypatch):
        import repro.thermal.network as netmod

        def raising_splu(g):
            raise RuntimeError("Factor is exactly singular")

        monkeypatch.setattr(netmod, "splu", raising_splu)
        net = simple_network()
        with pytest.raises(SingularNetworkError,
                           match="connected to a boundary"):
            net.solve({})

    def test_probe_solve_nonfinite_path(self, monkeypatch):
        import repro.thermal.network as netmod

        class FakeLU:
            def solve(self, rhs):
                return np.full_like(rhs, np.inf)

        monkeypatch.setattr(netmod, "splu", lambda g: FakeLU())
        net = simple_network()
        with pytest.raises(SingularNetworkError,
                           match="no .*path to any boundary"):
            net.solve({})

    def test_probe_solve_enormous_path(self, monkeypatch):
        import repro.thermal.network as netmod

        class FakeLU:
            def solve(self, rhs):
                return np.full_like(rhs, 1e13)

        monkeypatch.setattr(netmod, "splu", lambda g: FakeLU())
        net = simple_network()
        with pytest.raises(SingularNetworkError):
            net.solve({})

    def test_healthy_network_passes_probe(self):
        net = simple_network()
        res = net.solve({"slab": np.ones((4, 4))})
        assert np.all(np.isfinite(res.layer("slab")))


class TestNonFinitePowerGuard:
    def test_nan_power_rejected(self):
        net = simple_network()
        bad = np.ones((4, 4)); bad[1, 1] = np.nan
        with pytest.raises(ThermalModelError, match="non-finite"):
            net.solve({"slab": bad})

    def test_inf_power_rejected(self):
        net = simple_network()
        bad = np.ones((4, 4)); bad[2, 0] = np.inf
        with pytest.raises(ThermalModelError, match="non-finite"):
            net.solve({"slab": bad})


class TestSolveMany:
    def test_matches_column_by_column(self):
        """One (n, k) block through the factor == k separate solves."""
        net = simple_network()
        rng = np.random.default_rng(7)
        powers = [{"slab": rng.uniform(0.0, 2.0, (4, 4))}
                  for _ in range(5)]
        batched = net.solve_many(powers)
        assert len(batched) == len(powers)
        for maps, res in zip(powers, batched):
            single = net.solve(maps)
            np.testing.assert_allclose(res.layer("slab"),
                                       single.layer("slab"),
                                       rtol=0, atol=1e-12)

    def test_empty_batch(self):
        assert simple_network().solve_many([]) == []

    def test_single_item_batch_matches_solve(self):
        net = simple_network()
        maps = {"slab": np.ones((4, 4))}
        np.testing.assert_allclose(
            net.solve_many([maps])[0].layer("slab"),
            net.solve(maps).layer("slab"), rtol=0, atol=1e-12)

    def test_batch_shares_input_guards(self):
        net = simple_network()
        bad = np.ones((4, 4)); bad[0, 0] = np.nan
        with pytest.raises(ThermalModelError, match="non-finite"):
            net.solve_many([{"slab": np.ones((4, 4))}, {"slab": bad}])
