"""Tests for the checkpointed, fault-tolerant campaign runner."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.campaign import (
    CHECKPOINT_VERSION,
    CampaignPoint,
    CampaignRunner,
    LedgerEntry,
    PointRecord,
    evaluate_point,
    frequency_grid,
    npb_grid,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    DegradedResultWarning,
    TransientSolverError,
)
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    ResilienceOptions,
    RetryPolicy,
)

FAST_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                          jitter_fraction=0.0)


def options(*specs, allow_degraded=False, seed=0):
    injector = FaultInjector(specs, seed=seed) if specs else None
    return ResilienceOptions(retry_policy=FAST_POLICY,
                             allow_degraded=allow_degraded,
                             injector=injector,
                             sleep=lambda s: None)


# -- grid builders and record plumbing --------------------------------------

class TestGrids:
    def test_frequency_grid_shape(self):
        pts = frequency_grid("low-power-cmp", (1, 2), ("water", "air"))
        assert len(pts) == 4
        assert {p.key for p in pts} == {
            "freq/low-power-cmp/n1/water", "freq/low-power-cmp/n2/water",
            "freq/low-power-cmp/n1/air", "freq/low-power-cmp/n2/air"}

    def test_npb_grid_kind_and_threads(self):
        pts = npb_grid("low-power-cmp", (2,), ("water",), threads=8)
        assert pts[0].kind == "npb"
        assert pts[0].threads == 8
        assert pts[0].key == "npb/low-power-cmp/n2/water"

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            CampaignPoint(kind="magic", chip="x", n_chips=1,
                          cooling="water")

    def test_bad_n_chips_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignPoint(kind="freq", chip="x", n_chips=0,
                          cooling="water")

    def test_point_round_trip(self):
        p = CampaignPoint(kind="npb", chip="c", n_chips=3,
                          cooling="air", threads=4)
        assert CampaignPoint.from_dict(p.to_dict()) == p

    def test_record_round_trip(self):
        p = CampaignPoint(kind="freq", chip="c", n_chips=2, cooling="w")
        r = PointRecord(point=p, status="ok", f_ghz=1.5, max_temp_c=60.0,
                        rung="analytic", degraded=True, attempts=3,
                        errors=("a", "b"), npb_time_s={"ft": 1.0})
        back = PointRecord.from_dict(
            json.loads(json.dumps(r.to_dict())))
        assert back == r
        assert back.finished

    def test_ledger_round_trip(self):
        p = CampaignPoint(kind="freq", chip="c", n_chips=2, cooling="w")
        e = LedgerEntry(key=p.key, point=p, exception="X", message="m",
                        attempts=2, rungs_tried=("sparse-lu",),
                        allow_degraded=False)
        assert LedgerEntry.from_dict(
            json.loads(json.dumps(e.to_dict()))) == e

    def test_operating_point_reconstruction(self):
        p = CampaignPoint(kind="freq", chip="c", n_chips=2, cooling="w")
        r = PointRecord(point=p, status="ok", f_ghz=1.5, max_temp_c=60.0,
                        chip_power_w=30.0, total_power_w=70.0)
        op = r.operating_point()
        assert op.feasible and op.f_ghz == pytest.approx(1.5)
        failed = PointRecord(point=p, status="failed")
        assert not failed.operating_point().feasible


class TestRunnerValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(())

    def test_duplicate_points_rejected(self):
        p = CampaignPoint(kind="freq", chip="c", n_chips=1, cooling="w")
        with pytest.raises(ConfigurationError, match="duplicate"):
            CampaignRunner((p, p))


# -- end-to-end campaigns (acceptance criteria) -----------------------------

class TestCampaignRuns:
    def grid(self):
        """2 clean points, 1 infeasible (low-power/air/n6, fast grid)."""
        return frequency_grid("low-power-cmp", (2, 6), ("water", "air"))

    def test_faulted_grid_completes_with_ledger(self, tmp_path,
                                                fast_params):
        """Acceptance: a grid with a singular-injected point and an
        infeasible point runs to completion, writing checkpoint +
        ledger."""
        ck = tmp_path / "c.json"
        runner = CampaignRunner(
            self.grid(),
            resilience=options(FaultSpec("singular", max_fires=1)),
            checkpoint_path=ck, params=fast_params)
        result = runner.run()
        s = result.summary()
        assert s["failed"] == 1            # the single fire hits point 1
        assert s["infeasible"] == 1        # air n=6
        assert s["ok"] == 2
        assert len(result.ledger) == 1
        entry = result.ledger[0]
        assert entry.exception == "SingularNetworkError"
        assert entry.rungs_tried == ("sparse-lu",)
        assert not entry.allow_degraded
        data = json.loads(ck.read_text())
        assert data["version"] == CHECKPOINT_VERSION
        assert len(data["points"]) == 4
        assert len(data["ledger"]) == 1

    def test_allow_degraded_yields_analytic_result(self, tmp_path,
                                                   fast_params):
        """Acceptance: with allow_degraded the faulted point returns an
        analytic-rung result tagged degraded=True; without it the point
        lands in the failure ledger (previous test)."""
        runner = CampaignRunner(
            self.grid(),
            resilience=options(FaultSpec("singular", max_fires=1),
                               allow_degraded=True),
            checkpoint_path=tmp_path / "c.json", params=fast_params)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = runner.run()
        assert result.ledger == ()
        degraded = [r for r in result.records.values() if r.degraded]
        assert len(degraded) == 1
        rec = degraded[0]
        assert rec.status == "ok"
        assert rec.rung == "analytic"
        assert rec.attempts >= 2
        clean = [r for r in result.records.values()
                 if not r.degraded and r.status == "ok"]
        assert all(r.rung == "sparse-lu" for r in clean)

    def test_resume_skips_finished_without_solving(self, tmp_path,
                                                   fast_params,
                                                   monkeypatch):
        """Acceptance: resume recomputes nothing for finished points,
        verified by counting sparse solver invocations."""
        from repro.thermal.network import ThermalNetwork
        ck = tmp_path / "c.json"
        solves = []
        real_solve = ThermalNetwork.solve
        real_solve_many = ThermalNetwork.solve_many
        monkeypatch.setattr(
            ThermalNetwork, "solve",
            lambda self, maps: solves.append(1) or real_solve(self, maps))
        monkeypatch.setattr(
            ThermalNetwork, "solve_many",
            lambda self, seq: solves.append(1) or real_solve_many(self,
                                                                  seq))

        first = CampaignRunner(self.grid(), resilience=options(),
                               checkpoint_path=ck,
                               params=fast_params).run()
        assert first.evaluated == 4 and first.skipped == 0
        assert len(solves) > 0

        solves.clear()
        second = CampaignRunner(self.grid(), resilience=options(),
                                checkpoint_path=ck,
                                params=fast_params).run(resume=True)
        assert second.evaluated == 0 and second.skipped == 4
        assert solves == []
        assert second.summary()["ok"] == first.summary()["ok"]

    def test_resume_reattempts_failed_and_clears_ledger(self, tmp_path,
                                                        fast_params):
        ck = tmp_path / "c.json"
        faulted = CampaignRunner(
            self.grid(),
            resilience=options(FaultSpec("singular", max_fires=1)),
            checkpoint_path=ck, params=fast_params).run()
        assert faulted.summary()["failed"] == 1
        retried = CampaignRunner(self.grid(), resilience=options(),
                                 checkpoint_path=ck,
                                 params=fast_params).run(resume=True)
        assert retried.evaluated == 1 and retried.skipped == 3
        assert retried.summary()["failed"] == 0
        assert retried.ledger == ()

    def test_resume_false_recomputes(self, tmp_path, fast_params):
        ck = tmp_path / "c.json"
        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        CampaignRunner(pts, resilience=options(), checkpoint_path=ck,
                       params=fast_params).run()
        fresh = CampaignRunner(pts, resilience=options(),
                               checkpoint_path=ck,
                               params=fast_params).run(resume=False)
        assert fresh.evaluated == 1 and fresh.skipped == 0

    def test_checkpoint_is_canonical_indent1_json(self, tmp_path,
                                                  fast_params):
        """The incremental fragment encoder must stay byte-identical
        to ``json.dumps(payload, indent=1)`` — byte-level checkpoint
        comparisons (serial vs workers, cache on vs off) ride on it."""
        import json
        ck = tmp_path / "c.json"
        pts = frequency_grid("low-power-cmp", (2, 4), ("water", "air"))
        CampaignRunner(pts, resilience=options(), checkpoint_path=ck,
                       params=fast_params).run()
        text = ck.read_text()
        assert text == json.dumps(json.loads(text), indent=1)

    def test_no_checkpoint_path_runs_in_memory(self, fast_params):
        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(pts, resilience=options(),
                                params=fast_params).run()
        assert result.checkpoint_path is None
        assert result.summary()["ok"] == 1

    def test_npb_point_records_times(self, fast_params):
        from repro.perfsim.npb import NPB_ORDER
        pts = npb_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(pts, resilience=options(),
                                params=fast_params).run()
        rec = result.records[pts[0].key]
        assert rec.status == "ok"
        assert set(rec.npb_time_s) == set(NPB_ORDER)
        assert all(t > 0 for t in rec.npb_time_s.values())
        assert rec.perf_rung == "flit-noc"

    def test_timeout_lands_in_ledger(self, tmp_path, fast_params):
        import time

        def slow(point, resilience, params):
            time.sleep(0.5)
            raise AssertionError("should have timed out")

        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(pts, resilience=options(),
                                checkpoint_path=tmp_path / "c.json",
                                params=fast_params,
                                point_timeout_s=0.05,
                                evaluator=slow).run()
        assert result.summary()["failed"] == 1
        assert result.ledger[0].exception == "TransientSolverError"
        assert "budget" in result.ledger[0].message

    def test_transient_fault_recovers_via_retry(self, fast_params):
        """A timeout fault with max_fires=1 succeeds on the retry."""
        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(
            pts,
            resilience=options(FaultSpec("timeout", max_fires=1)),
            params=fast_params).run()
        rec = result.records[pts[0].key]
        assert rec.status == "ok"
        assert rec.rung == "sparse-lu"
        assert not rec.degraded
        assert rec.attempts == 2


class TestCheckpointIO:
    def test_version_mismatch_recovers(self, tmp_path, fast_params):
        """An incompatible checkpoint is rotated aside, not fatal."""
        ck = tmp_path / "c.json"
        ck.write_text(json.dumps({"version": 99, "points": {},
                                  "ledger": []}))
        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(pts, resilience=options(),
                                checkpoint_path=ck,
                                params=fast_params).run()
        assert result.summary()["ok"] == 1
        assert result.evaluated == 1           # nothing resumable
        corrupt = ck.with_name(ck.name + ".corrupt")
        assert json.loads(corrupt.read_text())["version"] == 99

    def test_corrupt_json_recovers(self, tmp_path, fast_params):
        """Unparseable bytes are quarantined and the run proceeds."""
        ck = tmp_path / "c.json"
        ck.write_text("{not json")
        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(pts, resilience=options(),
                                checkpoint_path=ck,
                                params=fast_params).run()
        assert result.summary()["ok"] == 1
        assert ck.with_name(ck.name + ".corrupt").exists()
        # the rewritten checkpoint is valid again
        from repro.core.campaign import verify_checkpoint
        assert verify_checkpoint(ck)["checksum_ok"] is True

    def test_record_for_missing_point(self, fast_params):
        pts = frequency_grid("low-power-cmp", (2,), ("water",))
        result = CampaignRunner(pts, resilience=options(),
                                params=fast_params).run()
        other = CampaignPoint(kind="freq", chip="ghost", n_chips=1,
                              cooling="water")
        with pytest.raises(CheckpointError):
            result.record_for(other)
        assert result.record_for(pts[0]).status == "ok"


class TestResultReconstruction:
    def test_frequency_series_with_provenance(self, fast_params):
        pts = frequency_grid("low-power-cmp", (2, 4, 6), ("air",))
        result = CampaignRunner(pts, resilience=options(),
                                params=fast_params).run()
        series = result.frequency_series("low-power-cmp", "air")
        assert series.chips == (2, 4, 6)
        assert series.f_ghz[-1] == 0.0          # n=6 infeasible
        assert series.f_ghz[0] > 0
        assert series.rungs == ("sparse-lu",) * 3
        assert series.degraded == (False,) * 3
        assert series.feasible_up_to() == 4

    def test_failed_points_appear_as_failed_rung(self, fast_params):
        pts = frequency_grid("low-power-cmp", (2, 4), ("water",))
        result = CampaignRunner(
            pts,
            resilience=options(FaultSpec("singular", max_fires=1)),
            params=fast_params).run()
        series = result.frequency_series("low-power-cmp", "water")
        assert "failed" in series.rungs
        idx = series.rungs.index("failed")
        assert series.f_ghz[idx] == 0.0

    def test_npb_comparison_reconstruction(self, fast_params):
        pts = npb_grid("low-power-cmp", (2,), ("water", "air"))
        result = CampaignRunner(pts, resilience=options(),
                                params=fast_params).run()
        cmp_ = result.npb_comparison("low-power-cmp", 2, reference="air")
        assert cmp_.n_chips == 2
        assert {o.cooling for o in cmp_.outcomes} == {"water", "air"}
        for o in cmp_.outcomes:
            assert o.rung == "sparse-lu"
            assert len(o.npb_time_s) == 9


# -- default evaluator directly ---------------------------------------------

class TestEvaluatePoint:
    def test_freq_point(self, fast_params):
        p = CampaignPoint(kind="freq", chip="low-power-cmp", n_chips=2,
                          cooling="water")
        rec = evaluate_point(p, options(), fast_params)
        assert rec.status == "ok"
        assert rec.rung == "sparse-lu"
        assert rec.npb_time_s == {}

    def test_infeasible_point(self, fast_params):
        p = CampaignPoint(kind="freq", chip="low-power-cmp", n_chips=6,
                          cooling="air")
        rec = evaluate_point(p, options(), fast_params)
        assert rec.status == "infeasible"
        assert rec.f_ghz == 0.0
        assert rec.finished

    def test_threshold_override(self, fast_params):
        base = CampaignPoint(kind="freq", chip="low-power-cmp",
                             n_chips=2, cooling="water")
        tight = CampaignPoint(kind="freq", chip="low-power-cmp",
                              n_chips=2, cooling="water",
                              threshold_c=40.0)
        f_base = evaluate_point(base, options(), fast_params).f_ghz
        f_tight = evaluate_point(tight, options(), fast_params).f_ghz
        assert f_tight <= f_base


# -- resilient sweep / cosim integration ------------------------------------

class TestResilientSweeps:
    def test_frequency_vs_chips_resilient_matches_clean(self,
                                                        fast_params):
        from repro.core.sweeps import frequency_vs_chips
        clean = frequency_vs_chips("low-power-cmp", (2, 4), ("water",),
                                   params=fast_params)
        res = frequency_vs_chips("low-power-cmp", (2, 4), ("water",),
                                 params=fast_params,
                                 resilience=options())
        assert res[0].f_ghz == clean[0].f_ghz
        assert res[0].rungs == ("sparse-lu", "sparse-lu")
        assert res[0].degraded == (False, False)

    def test_frequency_vs_chips_degraded_survives_fault(self,
                                                        fast_params):
        from repro.core.sweeps import frequency_vs_chips
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            series, = frequency_vs_chips(
                "low-power-cmp", (2, 4), ("water",), params=fast_params,
                resilience=options(FaultSpec("singular", max_fires=2),
                                   allow_degraded=True))
        assert "analytic" in series.rungs
        assert any(series.degraded)
        assert all(f > 0 for f in series.f_ghz)

    def test_run_npb_comparison_resilient(self, fast_params):
        from repro.core.cosim import run_npb_comparison
        cmp_ = run_npb_comparison("low-power-cmp", 2, reference="water",
                                  coolings=("water",), params=fast_params,
                                  resilience=options())
        o = cmp_.outcomes[0]
        assert o.rung == "sparse-lu"
        assert not o.degraded
        assert o.point.feasible


class TestFeasibleUpTo:
    def test_gap_semantics_pinned(self):
        """Satellite: feasible n=2, infeasible n=3, feasible n=4 → 4."""
        from repro.core.sweeps import FrequencySeries
        s = FrequencySeries(cooling="water", chips=(2, 3, 4),
                            f_ghz=(1.0, 0.0, 2.0))
        assert s.feasible_up_to() == 4
        assert s.contiguous_up_to() == 2

    def test_all_infeasible(self):
        from repro.core.sweeps import FrequencySeries
        s = FrequencySeries(cooling="air", chips=(2, 3),
                            f_ghz=(0.0, 0.0))
        assert s.feasible_up_to() == 0
        assert s.contiguous_up_to() == 0


# -- CLI ---------------------------------------------------------------------

class TestCampaignCli:
    def run_cli(self, tmp_path, *extra):
        from repro.cli import main
        ck = tmp_path / "cli.json"
        argv = ["campaign", "--chip", "low-power-cmp", "--max-chips", "1",
                "--cooling", "water", "--checkpoint", str(ck),
                "--max-retries", "1", "--seed", "1", *extra]
        return main(argv), ck

    def test_smoke_and_resume(self, tmp_path, capsys):
        code, ck = self.run_cli(tmp_path)
        assert code == 0
        data = json.loads(ck.read_text())
        assert data["version"] == CHECKPOINT_VERSION
        assert len(data["points"]) == 1
        assert "ok" in capsys.readouterr().out

        code, _ = self.run_cli(tmp_path, "--resume")
        assert code == 0
        assert "skipped 1" in capsys.readouterr().out

    def test_injected_failure_exit_code(self, tmp_path, capsys):
        code, ck = self.run_cli(tmp_path, "--inject", "singular:1:2")
        # The single point fails; no finished point → exit 1.
        assert code == 1
        data = json.loads(ck.read_text())
        assert len(data["ledger"]) == 1
        assert "SingularNetworkError" in capsys.readouterr().out

    def test_injected_failure_degraded_recovers(self, tmp_path, capsys):
        code, ck = self.run_cli(tmp_path, "--inject", "singular:1:2",
                                "--allow-degraded")
        assert code == 0
        data = json.loads(ck.read_text())
        assert data["ledger"] == []
        rec, = data["points"].values()
        assert rec["rung"] == "analytic"
        assert rec["degraded"] is True
