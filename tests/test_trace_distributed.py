"""Cross-process trace propagation and repatriation.

The tentpole guarantee: one campaign (or served request) run with
tracing on yields ONE merged trace in which every span — including
those recorded inside forked pool workers — chains through its
parents back to the submitting process's root span, with no id
collisions between processes. These tests pin that end to end over
:func:`repro.parallel.run_chunked` (inline, supervised, and bare-
executor paths) and :class:`repro.parallel.service.WorkerPool`, plus
the lossless Chrome ``trace_event`` round-trip of a multi-pid trace.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs import (
    Tracer,
    get_registry,
    get_tracer,
    spans_from_chrome,
    split_span_id,
)
from repro.parallel import ParallelConfig, run_chunked
from repro.parallel.service import WorkerPool


def _traced_point(payload, item):
    """Module-level task that opens its own span (like the thermal
    pipeline does) — must be picklable for the pool."""
    from repro.obs import span
    with span("thermal.solve", index=item):
        # Long enough that chunks overlap across workers; short enough
        # that the whole file stays cheap.
        time.sleep(0.02)
    return item * item


@pytest.fixture
def tracer():
    """The global tracer, enabled and empty; restored afterwards."""
    tr = get_tracer()
    tr.disable()
    tr.reset()
    tr.enable()
    yield tr
    tr.disable()
    tr.reset()


def _chain_to_root(span, by_id):
    """Walk parents to the root; fails if a parent id is missing."""
    cur = span
    hops = 0
    while cur.parent_id is not None:
        assert cur.parent_id in by_id, \
            f"{cur.name} references missing parent {cur.parent_id}"
        cur = by_id[cur.parent_id]
        hops += 1
        assert hops < 32, "parent cycle"
    return cur


class TestMergedTrace:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_every_span_chains_to_the_single_root(self, tracer, workers):
        items = list(range(8))
        with tracer.span("test.root"):
            out = run_chunked(
                items, _traced_point, None,
                config=ParallelConfig(workers=workers, chunk_size=1))
        assert out == [i * i for i in items]

        spans = tracer.spans
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids)), "duplicate span ids"
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.name == "test.root"]
        assert len(roots) == 1
        for s in spans:
            assert _chain_to_root(s, by_id) is roots[0]

        solves = [s for s in spans if s.name == "thermal.solve"]
        assert len(solves) == len(items)
        # Ids are pid-namespaced and agree with the recording pid.
        for s in spans:
            pid, local = split_span_id(s.span_id)
            assert local >= 1
            if s.pid:
                assert pid == s.pid

    def test_multi_worker_trace_spans_multiple_pids(self, tracer):
        with tracer.span("test.root"):
            run_chunked(list(range(8)), _traced_point, None,
                        config=ParallelConfig(workers=2, chunk_size=1))
        worker_pids = {s.pid for s in tracer.spans
                       if s.name == "worker.point"}
        assert len(worker_pids) >= 2, worker_pids
        assert os.getpid() not in worker_pids
        # The chunk spans are remote-parented onto the parent process's
        # parallel.run span.
        by_id = {s.span_id: s for s in tracer.spans}
        for s in tracer.spans:
            if s.name == "supervisor.chunk":
                parent = by_id[s.parent_id]
                assert parent.name == "parallel.run"
                assert parent.pid == os.getpid()

    def test_repatriation_counter_increments(self, tracer):
        before = get_registry().snapshot()["counters"].get(
            "trace.spans_repatriated", 0)
        with tracer.span("test.root"):
            run_chunked(list(range(4)), _traced_point, None,
                        config=ParallelConfig(workers=2, chunk_size=2))
        after = get_registry().snapshot()["counters"].get(
            "trace.spans_repatriated", 0)
        # 2 chunks x (1 chunk span + 2 point spans + 2 solve spans).
        assert after - before == 10

    def test_bare_executor_path_repatriates_too(self, tracer):
        with tracer.span("test.root"):
            run_chunked(list(range(4)), _traced_point, None,
                        config=ParallelConfig(workers=2, chunk_size=2,
                                              supervised=False))
        names = [s.name for s in tracer.spans]
        assert names.count("supervisor.chunk") == 2
        assert names.count("worker.point") == 4
        by_id = {s.span_id: s for s in tracer.spans}
        root = next(s for s in tracer.spans if s.name == "test.root")
        for s in tracer.spans:
            assert _chain_to_root(s, by_id) is root

    def test_disabled_tracer_ships_and_records_nothing(self):
        tr = get_tracer()
        tr.disable()
        tr.reset()
        out = run_chunked(list(range(4)), _traced_point, None,
                          config=ParallelConfig(workers=2, chunk_size=2))
        assert out == [i * i for i in range(4)]
        assert tr.spans == ()

    def test_fork_inherited_stack_does_not_shadow_remote_parent(
            self, tracer):
        """The serve shape: the pool forks while one span (cli.serve)
        is open, but tasks are submitted under another (broker.
        dispatch). The worker must parent its chunk onto the span open
        at *submit* time — the shipped context — not the stale stack
        entry its main thread inherited through fork."""
        with tracer.span("startup"):
            pool = WorkerPool(_traced_point, None, workers=1)
        try:
            with tracer.span("dispatch"):
                assert pool.submit(3).result(timeout=60) == 9
        finally:
            pool.close()
        by_id = {s.span_id: s for s in tracer.spans}
        chunks = [s for s in tracer.spans if s.name == "supervisor.chunk"]
        assert chunks, [s.name for s in tracer.spans]
        for s in chunks:
            assert by_id[s.parent_id].name == "dispatch"

    def test_worker_pool_merges_before_future_resolves(self, tracer):
        with WorkerPool(_traced_point, None, workers=2) as pool:
            with tracer.span("test.root", kind="serve"):
                futs = [pool.submit(i) for i in range(4)]
                assert [f.result(timeout=60) for f in futs] == \
                    [i * i for i in range(4)]
        spans = tracer.spans
        by_id = {s.span_id: s for s in spans}
        root = next(s for s in spans if s.name == "test.root")
        points = [s for s in spans if s.name == "worker.point"]
        assert len(points) == 4
        for s in points:
            assert _chain_to_root(s, by_id) is root


class TestChromeRoundTrip:
    def test_multi_pid_roundtrip_is_lossless(self, tracer):
        with tracer.span("test.root"):
            run_chunked(list(range(4)), _traced_point, None,
                        config=ParallelConfig(workers=2, chunk_size=1))
        orig = tracer.spans
        doc = json.loads(json.dumps(tracer.chrome_trace()))
        back = spans_from_chrome(doc)
        assert len(back) == len(orig)
        by_id = {r["span_id"]: r for r in back}
        for s in orig:
            r = by_id[s.span_id]
            assert r["name"] == s.name
            assert r["parent_id"] == s.parent_id
            assert r["pid"] == s.pid or (s.pid == 0
                                         and r["pid"] == os.getpid())

    def test_adopting_roundtripped_records_preserves_tree(self, tracer):
        with tracer.span("test.root"):
            run_chunked(list(range(4)), _traced_point, None,
                        config=ParallelConfig(workers=2, chunk_size=1))
        records = spans_from_chrome(
            json.loads(json.dumps(tracer.chrome_trace())))
        fresh = Tracer()
        assert fresh.adopt_spans(records) == len(tracer.spans)
        assert {s.span_id: s.parent_id for s in fresh.spans} == \
            {s.span_id: s.parent_id for s in tracer.spans}
