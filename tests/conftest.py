"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.cooling.options import get_cooling
from repro.power.processors import get_chip
from repro.stack.chipstack import StackConfig
from repro.thermal.hotspot import ThermalModel
from repro.thermal.package import DEFAULT_PACKAGE, PackageParams


@pytest.fixture(scope="session")
def fast_params() -> PackageParams:
    """Coarser grids for tests that only need qualitative behaviour."""
    from dataclasses import replace
    return replace(DEFAULT_PACKAGE, die_grid=8, package_grid=4)


@pytest.fixture(scope="session")
def lp_water_4(fast_params: PackageParams) -> ThermalModel:
    """A 4-chip low-power stack under water immersion (shared, cached)."""
    return ThermalModel(
        StackConfig(chip=get_chip("low-power-cmp"), n_chips=4),
        get_cooling("water"),
        fast_params,
    )


@pytest.fixture(scope="session")
def hf_air_2(fast_params: PackageParams) -> ThermalModel:
    """A 2-chip high-frequency stack under air cooling."""
    return ThermalModel(
        StackConfig(chip=get_chip("high-frequency-cmp"), n_chips=2),
        get_cooling("air"),
        fast_params,
    )
