"""Tests for the supervised worker pool and crash-consistent checkpoints.

The three acceptance behaviours of the supervision tree, asserted
end to end:

1. a SIGKILLed worker mid-chunk is restarted and the campaign
   completes with byte-identical results for every surviving point,
   plus restart/poison records in the ledger;
2. a chunk that keeps crashing its worker is quarantined as ``poison``
   instead of aborting the run — and the poisoned set is identical at
   every worker count;
3. a truncated / torn-write checkpoint resumes from the last good
   state instead of crashing.

Campaign-level tests use cheap module-level evaluators (no thermal
solves) so the process churn, not the physics, dominates runtime.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import (
    CampaignRunner,
    LedgerEntry,
    PointRecord,
    frequency_grid,
    verify_checkpoint,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    PoolClosedError,
    WorkerCrashError,
)
from repro.obs import get_registry
from repro.parallel import (
    ParallelConfig,
    Poisoned,
    SupervisedPool,
    SupervisorConfig,
    WorkerPool,
    run_chunked,
)
from repro.resilience import FaultSpec, ProcessFaultPlan, ResilienceOptions, \
    RetryPolicy

FAST_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                          jitter_fraction=0.0)

#: Fast supervision knobs for tests (short beats, quick hang detection).
FAST = dict(heartbeat_interval_s=0.05, heartbeat_timeout_s=3.0)


def _square(payload, item):
    """Cheap module-level pool task."""
    return payload + item * item


def _sleepy(payload, item):
    """Pool task slow enough to outlast a short heartbeat deadline."""
    import time
    time.sleep(payload)
    return item


def _cheap_eval(point, resilience, params):
    """Module-level campaign evaluator: no solver, deterministic."""
    return PointRecord(point=point, status="ok",
                       f_ghz=float(point.n_chips), rung="sparse-lu",
                       attempts=1)


def kill_plan(max_fires, *, probability=1.0, seed=7, kind="worker_kill"):
    return ProcessFaultPlan(
        specs=(FaultSpec(kind=kind, probability=probability,
                         max_fires=max_fires),),
        seed=seed)


def options():
    return ResilienceOptions(retry_policy=FAST_POLICY,
                             sleep=lambda s: None)


# -- the pool itself ---------------------------------------------------------

class TestSupervisedPool:
    def test_round_trip(self):
        with SupervisedPool(_square, 100,
                            SupervisorConfig(workers=2, **FAST)) as p:
            results, wall = p.submit([(0, 1), (1, 2)],
                                     key="chunk/0-1").result(timeout=60)
        assert results == [(0, 101), (1, 104)]
        assert wall >= 0.0

    def test_sigkill_mid_chunk_recovers(self):
        """A killed worker restarts and the retried chunk succeeds."""
        before = get_registry().counter("supervisor.restarts").value
        out = run_chunked(
            list(range(6)), _square, 0,
            config=ParallelConfig(workers=2, chunk_size=2, **FAST),
            fault_plan=kill_plan(max_fires=1))
        assert out == [i * i for i in range(6)]
        assert get_registry().counter("supervisor.restarts").value > before

    def test_crash_threshold_poisons_chunk(self):
        """Crashing past max_task_crashes quarantines, not aborts."""
        out = run_chunked(
            list(range(4)), _square, 0,
            config=ParallelConfig(workers=2, chunk_size=2, **FAST),
            fault_plan=kill_plan(max_fires=2))
        assert all(isinstance(x, Poisoned) for x in out)
        assert all(x.crashes == 2 for x in out)

    def test_hang_detected_by_task_timeout(self):
        """A wedged worker is killed at the chunk deadline and retried."""
        before = get_registry().counter("supervisor.task_timeouts").value
        out = run_chunked(
            list(range(2)), _square, 0,
            config=ParallelConfig(workers=1, chunk_size=2,
                                  task_timeout_s=1.0, **FAST),
            fault_plan=kill_plan(max_fires=1, kind="worker_hang"))
        assert out == [0, 1]
        assert get_registry().counter(
            "supervisor.task_timeouts").value > before

    def test_slow_heartbeat_detected(self):
        """A busy-but-silent worker trips the heartbeat deadline.

        The fault mutes heartbeats while the (slow) task runs, so the
        supervisor sees silence with a task in flight — the starved-
        process signature — kills the worker, and the retry succeeds.
        """
        before = get_registry().counter(
            "supervisor.heartbeat_misses").value
        plan = ProcessFaultPlan(
            specs=(FaultSpec(kind="slow_heartbeat", probability=1.0,
                             max_fires=1),),
            seed=7, stall_s=30.0)
        out = run_chunked(
            list(range(2)), _sleepy, 1.0,
            config=ParallelConfig(workers=1, chunk_size=2,
                                  heartbeat_interval_s=0.05,
                                  heartbeat_timeout_s=0.4,
                                  task_timeout_s=None),
            fault_plan=plan)
        assert out == [0, 1]
        assert get_registry().counter(
            "supervisor.heartbeat_misses").value > before

    def test_submit_after_close_raises_structured(self):
        pool = SupervisedPool(_square, 0,
                              SupervisorConfig(workers=1, **FAST))
        pool.close()
        assert pool.closed
        with pytest.raises(PoolClosedError, match="resubmit"):
            pool.submit([(0, 1)])

    def test_empty_chunk_rejected(self):
        with SupervisedPool(_square, 0,
                            SupervisorConfig(workers=1, **FAST)) as p:
            with pytest.raises(ConfigurationError):
                p.submit([])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(workers=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(heartbeat_timeout_s=0.01,
                             heartbeat_interval_s=0.2)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(max_task_crashes=0)
        assert SupervisorConfig().backoff_s(1) <= \
            SupervisorConfig().backoff_s(10)


class TestProcessFaultPlan:
    def test_stateless_and_deterministic(self):
        plan = kill_plan(max_fires=1, probability=0.5, seed=11)
        draws = [plan.draw(f"chunk/{i}", 0) for i in range(64)]
        assert draws == [plan.draw(f"chunk/{i}", 0) for i in range(64)]
        assert any(d == "worker_kill" for d in draws)
        assert any(d is None for d in draws)

    def test_max_fires_caps_attempts(self):
        plan = kill_plan(max_fires=1)
        assert plan.draw("chunk/0", 0) == "worker_kill"
        assert plan.draw("chunk/0", 1) is None      # retry survives

    def test_disabled_is_noop(self):
        plan = ProcessFaultPlan(
            specs=(FaultSpec(kind="worker_kill", probability=1.0),),
            enabled=False)
        assert plan.draw("chunk/0", 0) is None

    def test_rejects_model_site_specs(self):
        with pytest.raises(ConfigurationError):
            ProcessFaultPlan(specs=(FaultSpec(kind="singular"),))


# -- the serving pool --------------------------------------------------------

class TestServiceWorkerPool:
    def test_crash_fails_item_but_pool_survives(self):
        """The poisoned item fails structurally; later items succeed."""
        with WorkerPool(_square, 0, workers=1,
                        fault_plan=kill_plan(max_fires=2)) as pool:
            with pytest.raises(WorkerCrashError) as err:
                pool.submit(3).result(timeout=60)
            assert err.value.crashes == 2
            assert err.value.to_dict()["error"] == "worker_crash"

    def test_transient_crash_retried_transparently(self):
        with WorkerPool(_square, 0, workers=1,
                        fault_plan=kill_plan(max_fires=1)) as pool:
            assert pool.submit(4).result(timeout=60) == 16

    def test_closed_pool_raises_pool_closed(self):
        pool = WorkerPool(_square, 0, workers=1)
        pool.close()
        assert pool.closed
        with pytest.raises(PoolClosedError):
            pool.submit(1)


# -- campaigns under process faults ------------------------------------------

@pytest.fixture
def grid():
    return frequency_grid("low-power-cmp", (1, 2, 3, 4), ("water",))


def _run(grid, ck, *, plan=None, workers=2, chunk_size=1, resume=True):
    return CampaignRunner(
        grid, resilience=options(), checkpoint_path=ck,
        evaluator=_cheap_eval, workers=workers, chunk_size=chunk_size,
        process_faults=plan, heartbeat_timeout_s=5.0,
    ).run(resume=resume)


class TestCampaignUnderChaos:
    def test_sigkill_preserves_byte_identical_results(self, tmp_path,
                                                      grid):
        """Transient kills change nothing about the output bytes."""
        clean = _run(grid, tmp_path / "clean.json")
        chaotic = _run(grid, tmp_path / "chaos.json",
                       plan=kill_plan(max_fires=1, probability=0.7))
        assert chaotic.summary()["ok"] == len(grid)
        a = json.loads((tmp_path / "clean.json").read_text())
        b = json.loads((tmp_path / "chaos.json").read_text())
        a.pop("manifest"), b.pop("manifest")
        assert a == b

    def test_poison_quarantined_with_ledger_record(self, tmp_path, grid):
        """Deterministic crashes land in the ledger, not an abort."""
        clean = _run(grid, tmp_path / "clean.json")
        result = _run(grid, tmp_path / "chaos.json",
                      plan=kill_plan(max_fires=2, probability=0.6, seed=5))
        s = result.summary()
        assert s.get("poison", 0) >= 1
        assert s["ok"] + s["poison"] == len(grid)
        poisoned = {e.key for e in result.ledger
                    if e.exception == "WorkerCrashError"}
        assert len(poisoned) == s["poison"]
        assert all(e.rungs_tried == ("poison",) for e in result.ledger)
        # every surviving point is identical to the clean run
        for key, rec in result.records.items():
            if rec.status == "ok":
                assert rec == clean.records[key]

    def test_poison_set_identical_at_any_worker_count(self, tmp_path,
                                                      grid):
        plan = kill_plan(max_fires=2, probability=0.6, seed=5)
        r1 = _run(grid, tmp_path / "w1.json", plan=plan, workers=1)
        r2 = _run(grid, tmp_path / "w2.json", plan=plan, workers=3)
        poisoned = lambda r: {k for k, rec in r.records.items()
                              if rec.status == "poison"}
        assert poisoned(r1) == poisoned(r2)
        assert poisoned(r1)            # the plan does poison something

    def test_poisoned_points_reattempted_on_resume(self, tmp_path, grid):
        ck = tmp_path / "c.json"
        first = _run(grid, ck, plan=kill_plan(max_fires=2,
                                              probability=0.6,
                                              seed=5))
        assert first.summary().get("poison", 0) >= 1
        # rerun without faults: only the poisoned points recompute
        second = _run(grid, ck)
        assert second.summary()["ok"] == len(grid)
        assert second.evaluated == first.summary()["poison"]
        assert second.ledger == ()

    def test_quarantine_metric_incremented(self, tmp_path, grid):
        before = get_registry().counter(
            "campaign.points_quarantined").value
        result = _run(grid, tmp_path / "c.json",
                      plan=kill_plan(max_fires=2, probability=0.6, seed=5))
        after = get_registry().counter(
            "campaign.points_quarantined").value
        assert after - before == result.summary()["poison"]

    def test_process_faults_require_workers(self, grid):
        with pytest.raises(ConfigurationError, match="workers"):
            CampaignRunner(grid, process_faults=kill_plan(max_fires=1))


# -- checkpoint integrity and recovery ---------------------------------------

class TestCheckpointRecovery:
    def test_truncated_checkpoint_resumes(self, tmp_path, grid):
        """A torn write falls back to .bak instead of crashing."""
        ck = tmp_path / "c.json"
        _run(grid, ck)
        good = ck.read_text()
        ck.write_text(good[:len(good) // 2])       # simulated torn write
        before = get_registry().counter("checkpoint.recoveries").value
        result = _run(grid, ck)
        assert result.summary()["ok"] == len(grid)
        assert result.skipped >= 1                 # .bak state was reused
        assert get_registry().counter(
            "checkpoint.recoveries").value == before + 1
        assert ck.with_name(ck.name + ".corrupt").exists()

    def test_checksum_mismatch_detected(self, tmp_path, grid):
        """Valid JSON with silently flipped payload bits is rejected."""
        ck = tmp_path / "c.json"
        _run(grid, ck)
        data = json.loads(ck.read_text())
        key = next(iter(data["points"]))
        data["points"][key]["f_ghz"] = 9999.0      # bit rot
        ck.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="checksum"):
            verify_checkpoint(ck)
        # and the runner recovers rather than trusting the bytes
        result = _run(grid, ck)
        assert result.summary()["ok"] == len(grid)
        assert all(r.f_ghz != 9999.0 for r in result.records.values())

    def test_verify_checkpoint_roundtrip(self, tmp_path, grid):
        ck = tmp_path / "c.json"
        _run(grid, ck)
        info = verify_checkpoint(ck)
        assert info == {"version": 1, "points": len(grid),
                        "ledger_entries": 0, "checksum_ok": True}
        with pytest.raises(CheckpointError):
            verify_checkpoint(tmp_path / "missing.json")

    def test_bak_holds_previous_generation(self, tmp_path, grid):
        ck = tmp_path / "c.json"
        _run(grid, ck)
        bak = ck.with_name(ck.name + ".bak")
        assert bak.exists()
        # .bak is exactly one checkpoint generation behind
        assert len(json.loads(bak.read_text())["points"]) \
            == len(grid) - 1

    def test_both_generations_corrupt_starts_empty(self, tmp_path,
                                                   grid):
        ck = tmp_path / "c.json"
        _run(grid, ck)
        ck.write_text("{torn")
        ck.with_name(ck.name + ".bak").write_text("{also torn")
        result = _run(grid, ck)
        assert result.summary()["ok"] == len(grid)
        assert result.evaluated == len(grid)       # nothing resumable

    def test_writer_unlinks_temp_on_failure(self, tmp_path, grid):
        """A json.dump crash mid-write leaves no .tmp litter behind."""
        ck = tmp_path / "c.json"
        runner = CampaignRunner(grid, resilience=options(),
                                checkpoint_path=ck,
                                evaluator=_cheap_eval)
        record = _cheap_eval(grid[0], None, None)
        bad_entry = LedgerEntry(
            key=grid[0].key, point=grid[0], exception="X",
            message="boom", attempts=1, rungs_tried=("a",),
            allow_degraded=False)
        object.__setattr__(bad_entry, "message", object())  # unserializable
        with pytest.raises(TypeError):
            runner._write_checkpoint({grid[0].key: record}, [bad_entry])
        assert not list(tmp_path.glob("*.tmp"))
        assert not ck.exists()
