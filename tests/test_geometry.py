"""Tests for repro.floorplan.geometry, including hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FloorplanError
from repro.floorplan.geometry import Rect, grid_edges, rasterize_fraction


def rects(max_xy: float = 1.0, min_size: float = 1e-3):
    """Strategy producing valid rectangles inside [0, 2] x [0, 2]."""
    coord = st.floats(min_value=0.0, max_value=max_xy, allow_nan=False)
    size = st.floats(min_value=min_size, max_value=1.0, allow_nan=False)
    return st.builds(Rect, x=coord, y=coord, w=size, h=size)


class TestRect:
    def test_basic_properties(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == 4.0
        assert r.y2 == 6.0
        assert r.area == 12.0
        assert r.center == (2.5, 4.0)

    def test_zero_size_rejected(self):
        with pytest.raises(FloorplanError):
            Rect(0, 0, 0.0, 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(FloorplanError):
            Rect(0, 0, 1.0, -1.0)

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.0, 1.0)   # boundary included
        assert not r.contains_point(1.5, 0.5)

    def test_intersection_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 1, 1)
        assert a.intersection_area(b) == 0.0
        assert not a.overlaps(b)

    def test_intersection_partial(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 2, 2)
        assert a.intersection_area(b) == pytest.approx(1.0)

    def test_intersection_touching_edges_is_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 1, 1)
        assert a.intersection_area(b) == 0.0

    def test_inside(self):
        outer = Rect(0, 0, 10, 10)
        assert Rect(1, 1, 2, 2).inside(outer)
        assert not Rect(9, 9, 2, 2).inside(outer)

    def test_translated(self):
        r = Rect(0, 0, 1, 2).translated(3, 4)
        assert (r.x, r.y, r.w, r.h) == (3, 4, 1, 2)

    def test_rotated_180_center_block_fixed(self):
        outline = Rect(0, 0, 10, 10)
        centered = Rect(4, 4, 2, 2)
        assert centered.rotated_180(outline) == centered

    def test_rotated_180_corner(self):
        outline = Rect(0, 0, 10, 10)
        r = Rect(0, 0, 2, 1).rotated_180(outline)
        assert (r.x, r.y) == pytest.approx((8.0, 9.0))

    def test_mirrors(self):
        outline = Rect(0, 0, 10, 10)
        r = Rect(0, 0, 2, 2)
        assert r.mirrored_x(outline).x == pytest.approx(8.0)
        assert r.mirrored_y(outline).y == pytest.approx(8.0)

    @given(rects())
    @settings(max_examples=60)
    def test_rotation_involution(self, r: Rect):
        outline = Rect(0, 0, 2.5, 2.5)
        twice = r.rotated_180(outline).rotated_180(outline)
        assert twice.x == pytest.approx(r.x, abs=1e-12)
        assert twice.y == pytest.approx(r.y, abs=1e-12)

    @given(rects(), rects())
    @settings(max_examples=60)
    def test_intersection_symmetric(self, a: Rect, b: Rect):
        assert a.intersection_area(b) == pytest.approx(
            b.intersection_area(a))

    @given(rects(), rects())
    @settings(max_examples=60)
    def test_intersection_bounded(self, a: Rect, b: Rect):
        area = a.intersection_area(b)
        assert 0.0 <= area <= min(a.area, b.area) + 1e-15


class TestGridEdges:
    def test_edges_count_and_ends(self):
        e = grid_edges(1.0, 4.0, 8)
        assert len(e) == 9
        assert e[0] == 1.0
        assert e[-1] == pytest.approx(5.0)

    def test_invalid_n(self):
        with pytest.raises(FloorplanError):
            grid_edges(0.0, 1.0, 0)


class TestRasterize:
    def test_full_coverage(self):
        outline = Rect(0, 0, 1, 1)
        frac = rasterize_fraction(outline, outline, 4, 4)
        np.testing.assert_allclose(frac, 1.0)

    def test_half_coverage(self):
        outline = Rect(0, 0, 1, 1)
        left = Rect(0, 0, 0.5, 1)
        frac = rasterize_fraction(left, outline, 4, 4)
        assert frac[:, :2].min() == pytest.approx(1.0)
        assert frac[:, 2:].max() == pytest.approx(0.0)

    def test_partial_cell(self):
        outline = Rect(0, 0, 1, 1)
        tiny = Rect(0, 0, 0.125, 0.25)   # half a cell wide, full cell tall
        frac = rasterize_fraction(tiny, outline, 4, 4)
        assert frac[0, 0] == pytest.approx(0.5)
        assert frac.sum() == pytest.approx(0.5)

    def test_area_conservation_exact(self):
        outline = Rect(0, 0, 1, 1)
        r = Rect(0.123, 0.234, 0.345, 0.456)
        for n in (3, 7, 16):
            frac = rasterize_fraction(r, outline, n, n)
            cell_area = (1.0 / n) ** 2
            assert frac.sum() * cell_area == pytest.approx(r.area, rel=1e-12)

    @given(rects(max_xy=0.9, min_size=0.01),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=60)
    def test_conservation_property(self, r: Rect, nx: int, ny: int):
        outline = Rect(0, 0, 2.0, 2.0)
        frac = rasterize_fraction(r, outline, nx, ny)
        cell_area = (2.0 / nx) * (2.0 / ny)
        overlap = r.intersection_area(outline)
        assert frac.sum() * cell_area == pytest.approx(overlap, rel=1e-9)
        assert frac.min() >= 0.0
        assert frac.max() <= 1.0 + 1e-12

    def test_row_orientation_bottom_first(self):
        outline = Rect(0, 0, 1, 1)
        bottom = Rect(0, 0, 1, 0.25)
        frac = rasterize_fraction(bottom, outline, 4, 4)
        assert frac[0].min() == pytest.approx(1.0)   # row 0 = bottom
        assert frac[1:].max() == pytest.approx(0.0)
