"""Tests for stack configuration and the max-frequency optimizer."""

from __future__ import annotations

import pytest

from repro.cooling.options import get_cooling
from repro.core.freqopt import max_frequency, max_frequency_for, require_feasible
from repro.errors import ConfigurationError, InfeasibleError
from repro.power.processors import get_chip
from repro.stack.chipstack import StackConfig, flip_even_layers, uniform_stack
from repro.thermal.hotspot import ThermalModel
from repro.units import ghz


@pytest.fixture(scope="module")
def lp():
    return get_chip("low-power-cmp")


class TestStackConfig:
    def test_zero_chips_rejected(self, lp):
        with pytest.raises(ConfigurationError):
            StackConfig(chip=lp, n_chips=0)

    def test_rotation_length_mismatch_rejected(self, lp):
        with pytest.raises(ConfigurationError, match="length"):
            StackConfig(chip=lp, n_chips=3, rotations=(True,))

    def test_default_rotations_all_false(self, lp):
        s = StackConfig(chip=lp, n_chips=3)
        assert s.effective_rotations == (False, False, False)

    def test_flip_even_layers_alternates(self, lp):
        s = flip_even_layers(lp, 5)
        assert s.effective_rotations == (False, True, False, True, False)

    def test_adjacent_dies_always_differ_when_flipped(self, lp):
        s = flip_even_layers(lp, 8)
        r = s.effective_rotations
        assert all(a != b for a, b in zip(r, r[1:]))

    def test_die_floorplans_rotated(self, lp):
        s = flip_even_layers(lp, 2)
        fps = s.die_floorplans()
        assert fps[0].name == "baseline-16tile"
        assert fps[1].name.endswith("@180")

    def test_total_power(self, lp):
        s = uniform_stack(lp, 6)
        assert s.total_power_w(ghz(2.0)) == pytest.approx(6 * 47.2)

    def test_describe(self, lp):
        assert flip_even_layers(lp, 3).describe().endswith("[.F.]")


class TestMaxFrequency:
    def test_single_chip_water_reaches_cap(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 1), get_cooling("water"),
                             fast_params)
        p = max_frequency(model)
        assert p.feasible
        assert p.f_ghz == pytest.approx(2.0)

    def test_result_on_ladder(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 4), get_cooling("air"),
                             fast_params)
        p = max_frequency(model)
        if p.feasible:
            assert lp.ladder.contains(p.f_hz)

    def test_result_meets_threshold(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 3),
                             get_cooling("mineral_oil"), fast_params)
        p = max_frequency(model)
        assert p.feasible
        assert p.max_temp_c <= lp.threshold_c + 1e-6

    def test_next_step_would_violate(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 3),
                             get_cooling("mineral_oil"), fast_params)
        p = max_frequency(model)
        if p.feasible and p.f_hz < lp.ladder.f_max_hz:
            next_f = p.f_hz + lp.ladder.step_hz
            assert model.max_temperature_c(next_f) > lp.threshold_c

    def test_infeasible_tall_air_stack(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 10), get_cooling("air"),
                             fast_params)
        p = max_frequency(model)
        assert not p.feasible
        assert p.f_hz == 0.0
        assert p.max_temp_c > lp.threshold_c

    def test_tighter_threshold_lower_frequency(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 2), get_cooling("water"),
                             fast_params)
        loose = max_frequency(model, threshold_c=80.0)
        tight = max_frequency(model, threshold_c=60.0)
        assert tight.f_hz <= loose.f_hz

    def test_powers_reported(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 2), get_cooling("water"),
                             fast_params)
        p = max_frequency(model)
        assert p.chip_power_w == pytest.approx(lp.total_power_w(p.f_hz))
        assert p.total_power_w == pytest.approx(2 * p.chip_power_w)

    def test_wrapper_builds_model(self, fast_params, lp):
        p = max_frequency_for(uniform_stack(lp, 1), get_cooling("water"),
                              params=fast_params)
        assert p.feasible

    def test_require_feasible_passes_through(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 1), get_cooling("water"),
                             fast_params)
        p = max_frequency(model)
        assert require_feasible(p, "ctx") is p

    def test_require_feasible_raises(self, fast_params, lp):
        model = ThermalModel(uniform_stack(lp, 12), get_cooling("air"),
                             fast_params)
        p = max_frequency(model)
        with pytest.raises(InfeasibleError, match="ctx"):
            require_feasible(p, "ctx")

    def test_bisection_matches_linear_scan(self, fast_params, lp):
        """The bisection must agree with an exhaustive ladder scan."""
        model = ThermalModel(uniform_stack(lp, 4),
                             get_cooling("fluorinert"), fast_params)
        p = max_frequency(model)
        best = 0.0
        for f in lp.ladder.frequencies():
            if model.max_temperature_c(float(f)) <= lp.threshold_c + 1e-9:
                best = float(f)
        assert p.f_hz == pytest.approx(best)
