"""Tests for cache models, address streams, and the DRAM model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perfsim.cache import (
    DEFAULT_HIERARCHY,
    CacheHierarchyTiming,
    SetAssociativeCache,
    SyntheticAddressStream,
)
from repro.perfsim.memory import (
    DEFAULT_DRAM,
    DramParams,
    MemoryController,
    MemorySystem,
)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True     # same line
        assert c.access(64) is False    # next line

    def test_capacity_eviction_lru(self):
        # 2-way, line 64: one set cache of 128 B.
        c = SetAssociativeCache(128, line_bytes=64, associativity=2)
        assert c.num_sets == 1
        c.access(0)            # A
        c.access(64)           # B
        c.access(0)            # touch A -> B is LRU
        c.access(128)          # C evicts B
        assert c.contains(0)
        assert not c.contains(64)
        assert c.contains(128)
        assert c.stats.evictions == 1

    def test_sets_isolate_indices(self):
        c = SetAssociativeCache(2048, line_bytes=64, associativity=2)
        a = 0
        b = 64 * c.num_sets    # same set as a, different tag
        other_set = 64         # different set
        c.access(a)
        c.access(other_set)
        assert c.contains(a)
        c.access(b)
        assert c.contains(a)   # 2-way: both fit

    def test_invalidate(self):
        c = SetAssociativeCache(1024)
        c.access(0)
        assert c.invalidate(0) is True
        assert c.invalidate(0) is False
        assert not c.contains(0)

    def test_flush_keeps_stats(self):
        c = SetAssociativeCache(1024)
        c.access(0)
        c.flush()
        assert c.occupancy == 0
        assert c.stats.accesses == 1

    def test_miss_rate(self):
        c = SetAssociativeCache(1024)
        for _ in range(4):
            c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.25)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(1000, line_bytes=64, associativity=8)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(0)

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(1024).access(-1)

    def test_occupancy_bounded_by_capacity(self):
        c = SetAssociativeCache(4096, line_bytes=64, associativity=4)
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 1 << 20, 2000):
            c.access(int(a) * 64)
        assert c.occupancy <= 4096 // 64


class TestHierarchyTiming:
    def test_table1_values(self):
        h = DEFAULT_HIERARCHY
        assert h.l1_cycles == 1
        assert h.l2_cycles == 6
        assert h.l2_total_bytes == 12 * 1024 * 1024
        assert h.line_bytes == 64
        assert h.l2_associativity == 8

    def test_home_bank_interleaves(self):
        h = DEFAULT_HIERARCHY
        banks = {h.home_bank(line * 64) for line in range(24)}
        assert banks == set(range(12))

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchyTiming(l1_cycles=0)


class TestAddressStream:
    def test_reproducible(self):
        a = SyntheticAddressStream(hot_lines=64, warm_lines=1024,
                                   p_hot=0.8, p_warm=0.15, seed=7)
        b = SyntheticAddressStream(hot_lines=64, warm_lines=1024,
                                   p_hot=0.8, p_warm=0.15, seed=7)
        np.testing.assert_array_equal(a.next_addresses(500),
                                      b.next_addresses(500))

    def test_alignment(self):
        s = SyntheticAddressStream(hot_lines=16, warm_lines=64,
                                   p_hot=0.5, p_warm=0.4)
        assert np.all(s.next_addresses(100) % 64 == 0)

    def test_cold_addresses_never_repeat(self):
        s = SyntheticAddressStream(hot_lines=4, warm_lines=8,
                                   p_hot=0.0, p_warm=0.0)
        a = s.next_addresses(100)
        assert len(np.unique(a)) == 100

    def test_hot_set_produces_l1_hits(self):
        s = SyntheticAddressStream(hot_lines=32, warm_lines=4096,
                                   p_hot=0.95, p_warm=0.04, seed=1)
        l1 = SetAssociativeCache(128 * 1024, associativity=8)
        misses = sum(not l1.access(int(a)) for a in s.next_addresses(20000))
        mpki = misses / 20.0
        assert mpki < 60.0   # dominated by the resident hot set

    def test_streaming_defeats_any_cache(self):
        s = SyntheticAddressStream(hot_lines=8, warm_lines=8,
                                   p_hot=0.0, p_warm=0.0)
        l1 = SetAssociativeCache(128 * 1024, associativity=8)
        misses = sum(not l1.access(int(a)) for a in s.next_addresses(5000))
        assert misses == 5000

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticAddressStream(hot_lines=8, warm_lines=8,
                                   p_hot=0.7, p_warm=0.5)


class TestDram:
    def test_idle_latency_matches_table1_anchor(self):
        from repro.perfsim.memory import (
            MEMORY_LATENCY_CYCLES_AT_REF,
            MEMORY_REFERENCE_CLOCK_HZ,
        )
        assert DEFAULT_DRAM.idle_latency_s == pytest.approx(
            MEMORY_LATENCY_CYCLES_AT_REF / MEMORY_REFERENCE_CLOCK_HZ)

    def test_unloaded_access(self):
        c = MemoryController()
        done = c.access(1e-6)
        assert done == pytest.approx(1e-6 + DEFAULT_DRAM.idle_latency_s)

    def test_back_to_back_queueing(self):
        c = MemoryController()
        t1 = c.access(0.0)
        t2 = c.access(0.0)
        assert t2 == pytest.approx(t1 + DEFAULT_DRAM.service_time_s)

    def test_idle_gap_no_queueing(self):
        c = MemoryController()
        c.access(0.0)
        done = c.access(1.0)
        assert done == pytest.approx(1.0 + DEFAULT_DRAM.idle_latency_s)

    def test_system_interleaves_controllers(self):
        m = MemorySystem()
        ctrls = {m.controller_for(line * 64) for line in range(8)}
        assert ctrls == set(range(4))

    def test_system_access_counts(self):
        m = MemorySystem()
        for line in range(8):
            m.access(0.0, line * 64)
        assert sum(c.requests for c in m.controllers) == 8

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            DramParams(idle_latency_s=0.0)
        with pytest.raises(ConfigurationError):
            DramParams(num_controllers=0)
