"""Tests for the energy/EDP analysis and the McPAT-style report."""

from __future__ import annotations

import pytest

from repro.core.cosim import run_npb_comparison
from repro.core.energy import energy_outcomes, relative_energy_table
from repro.errors import InfeasibleError
from repro.power import get_chip
from repro.power.report import component_breakdown, ladder_report, render_report
from repro.units import ghz


@pytest.fixture(scope="module")
def lp6(fast_params):
    return run_npb_comparison("low-power-cmp", 6, reference="water_pipe",
                              params=fast_params)


class TestEnergy:
    def test_outcomes_only_feasible(self):
        # Full-resolution package: the water pipe cannot hold the
        # 8-chip low-power stack (the Fig. 11 premise), so its energy
        # outcome must be absent.
        cmp8 = run_npb_comparison("low-power-cmp", 8,
                                  reference="mineral_oil")
        names = {o.cooling for o in energy_outcomes(cmp8)}
        assert "water_pipe" not in names
        assert "water" in names

    def test_energy_is_power_times_time(self, lp6):
        for o in energy_outcomes(lp6):
            assert o.chip_energy_j == pytest.approx(
                o.mean_time_s * lp6.outcome(o.cooling).point.total_power_w)

    def test_edp_definition(self, lp6):
        for o in energy_outcomes(lp6):
            assert o.edp == pytest.approx(o.chip_energy_j * o.mean_time_s)

    def test_wall_energy_at_least_chip(self, lp6):
        for o in energy_outcomes(lp6):
            assert o.wall_energy_j >= o.chip_energy_j

    def test_relative_table_reference_is_one(self, lp6):
        table = relative_energy_table(lp6, "water_pipe")
        for v in table["water_pipe"].values():
            assert v == pytest.approx(1.0)

    def test_water_trades_energy_for_time(self, lp6):
        """The extension's finding: water is faster but spends more
        chip energy (higher V and f) — a performance play."""
        table = relative_energy_table(lp6, "water_pipe")
        assert table["water"]["time"] < 1.0
        assert table["water"]["chip_energy"] > 1.0

    def test_pue_softens_wall_energy(self, lp6):
        """At the wall, water's near-1 PUE claws back part of the chip
        energy premium relative to oil's facility."""
        table = relative_energy_table(lp6, "water_pipe")
        assert (table["water"]["wall_energy"]
                < table["mineral_oil"]["wall_energy"])

    def test_missing_reference_rejected(self, lp6):
        with pytest.raises(InfeasibleError):
            relative_energy_table(lp6, "air")


class TestPowerReport:
    def test_breakdown_shares_sum_to_one(self):
        b = component_breakdown(get_chip("low-power-cmp"), ghz(2.0))
        assert sum(e["share"] for e in b.values()) == pytest.approx(1.0)

    def test_breakdown_power_sums_to_chip(self):
        chip = get_chip("high-frequency-cmp")
        b = component_breakdown(chip, ghz(3.6))
        assert sum(e["power_w"] for e in b.values()) == pytest.approx(
            chip.total_power_w(ghz(3.6)))

    def test_core_density_highest_among_major_kinds(self):
        b = component_breakdown(get_chip("high-frequency-cmp"), ghz(3.6))
        assert b["core"]["density_w_cm2"] > b["l2"]["density_w_cm2"]

    def test_render_contains_anchors(self):
        text = render_report(get_chip("high-frequency-cmp"), ghz(3.6))
        assert "3.60 GHz" in text
        assert "56.80 W" in text
        assert "core" in text

    def test_ladder_report_rows(self):
        chip = get_chip("low-power-cmp")
        text = ladder_report(chip)
        assert len(text.splitlines()) == 2 + chip.ladder.num_steps
        assert "47.20" in text
