"""Direct tests for public helpers otherwise only exercised indirectly."""

from __future__ import annotations

import pytest

from repro.analysis.report import full_report
from repro.cli import build_parser
from repro.errors import ConfigurationError, ReproError, ThermalModelError
from repro.perfsim import SystemConfig
from repro.perfsim.analytic import npb_relative_times
from repro.perfsim.noc import MeshTopology, NodeId
from repro.perfsim.noc.loadsweep import pattern_destination
from repro.power.roadmap import check_endpoints
from repro.power.technology import get_technology
from repro.thermal.maps import stack_stats
from repro.units import ghz


def test_npb_relative_times_all_programs():
    rel = npb_relative_times(SystemConfig(n_chips=2), ghz(2.0), ghz(1.2))
    assert len(rel) == 9
    assert all(0.5 < v < 1.0 for v in rel.values())


def test_stack_stats_order_and_names():
    import numpy as np
    fields = {"die0": np.full((2, 2), 50.0),
              "die1": np.full((2, 2), 60.0)}
    stats = stack_stats(fields)
    assert [s.layer for s in stats] == ["die0", "die1"]
    assert stats[1].max_c == 60.0


def test_build_parser_lists_all_commands():
    parser = build_parser()
    sub = next(a for a in parser._actions
               if hasattr(a, "choices") and a.choices)
    assert set(sub.choices) == {
        "freq", "sweep", "npb", "maps", "pue", "headline", "report",
        "pareto", "spec", "robustness", "campaign", "chaos", "serve",
        "submit", "top", "fleet"}


def test_get_technology():
    assert get_technology("22nm-hp").alpha == 1.3
    with pytest.raises(ConfigurationError):
        get_technology("7nm")


def test_roadmap_endpoints():
    start, end = check_endpoints()
    assert start == pytest.approx(56.8)
    assert end == pytest.approx(425.0)


def test_pattern_destination_deterministic_patterns():
    import numpy as np
    topo = MeshTopology(4, 4, 1)
    rng = np.random.default_rng(0)
    src = NodeId(0, 1, 2)
    assert pattern_destination("transpose", src, topo, rng) == NodeId(
        0, 2, 1)
    assert pattern_destination("tornado", src, topo, rng) == NodeId(
        0, 3, 2)
    assert pattern_destination("neighbor", src, topo, rng) == NodeId(
        0, 2, 2)


def test_error_hierarchy_rooted():
    assert issubclass(ThermalModelError, ReproError)
    assert issubclass(ConfigurationError, ReproError)


@pytest.mark.slow
def test_full_report_passes_everywhere():
    """The complete validation engine, end to end (slow: ~1 min)."""
    reports = full_report()
    assert len(reports) == 6
    for rep in reports:
        assert rep.passed == rep.total, rep.render()
