"""Tests for the NoC load sweep, IRDS roadmap, and microchannel baseline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.perfsim.noc import (
    MeshTopology,
    load_latency_curve,
    measure_load_point,
    saturation_load,
)
from repro.power import get_chip
from repro.power.roadmap import (
    BASE_CMP_POWER_W,
    ROADMAP_CMP_POWER_W,
    feasibility_horizon,
    last_feasible_year,
    power_scale,
    projected_chip,
    projected_power_w,
    sanity_growth,
)
from repro.stack import uniform_stack
from repro.thermal.microchannel import (
    MicrochannelParams,
    build_microchannel_network,
    microchannel_max_temperature_c,
)
from repro.units import ghz


class TestNocLoadSweep:
    TOPO = MeshTopology(4, 4, 1)

    def test_latency_increases_with_load(self):
        curve = load_latency_curve(self.TOPO, loads=(0.02, 0.1, 0.3),
                                   window_cycles=800)
        lats = [p.mean_latency_cycles for p in curve]
        assert lats[0] < lats[1] < lats[2]

    def test_low_load_near_zero_load_latency(self):
        p = measure_load_point(self.TOPO, 0.01, window_cycles=800)
        # Mean zero-load latency for mixed traffic ~ 10 cycles on this
        # mesh; queueing at 1 % load is marginal.
        assert p.mean_queue_cycles < 2.0

    def test_queue_dominates_at_saturation(self):
        p = measure_load_point(self.TOPO, 0.5, window_cycles=800)
        assert p.mean_queue_cycles > 0.5 * p.mean_latency_cycles

    def test_reproducible(self):
        a = measure_load_point(self.TOPO, 0.1, seed=4, window_cycles=500)
        b = measure_load_point(self.TOPO, 0.1, seed=4, window_cycles=500)
        assert a.mean_latency_cycles == b.mean_latency_cycles

    def test_saturation_in_physical_range(self):
        sat = saturation_load(self.TOPO, window_cycles=600)
        # A 4x4 mesh with 5-flit data packets saturates well below
        # 1 packet/node/cycle and above a few percent.
        assert 0.05 < sat < 0.6

    def test_invalid_load_rejected(self):
        with pytest.raises(SimulationError):
            measure_load_point(self.TOPO, 0.0)
        with pytest.raises(SimulationError):
            measure_load_point(self.TOPO, 1.5)

    def test_delivered_counts_scale_with_load(self):
        lo = measure_load_point(self.TOPO, 0.02, window_cycles=800)
        hi = measure_load_point(self.TOPO, 0.2, window_cycles=800)
        assert hi.delivered > 5 * lo.delivered

    def test_adversarial_patterns_congest_xy(self):
        """Transpose/tornado are the classic adversaries of XY routing;
        nearest-neighbor is nearly free."""
        lat = {}
        for pat in ("uniform", "transpose", "tornado", "neighbor"):
            lat[pat] = measure_load_point(
                self.TOPO, 0.2, pattern=pat,
                window_cycles=600).mean_latency_cycles
        assert lat["neighbor"] < lat["uniform"]
        assert lat["tornado"] > lat["uniform"]
        assert lat["transpose"] > lat["uniform"]

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SimulationError):
            measure_load_point(self.TOPO, 0.1, pattern="gather")

    def test_neighbor_latency_is_single_hop(self):
        p = measure_load_point(self.TOPO, 0.01, pattern="neighbor",
                               window_cycles=400)
        # One hop, mixed 1/5-flit packets: ~3-8 cycles.
        assert p.mean_latency_cycles < 10.0


class TestRoadmap:
    def test_endpoints_pinned(self):
        assert projected_power_w(2019) == pytest.approx(BASE_CMP_POWER_W)
        assert projected_power_w(2033) == pytest.approx(
            ROADMAP_CMP_POWER_W)

    def test_growth_monotone(self):
        powers = [projected_power_w(y) for y in range(2019, 2034)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_growth_rate_sane(self):
        assert 1.10 < sanity_growth() < 1.25

    def test_pre_roadmap_year_rejected(self):
        with pytest.raises(ConfigurationError):
            power_scale(2018)

    def test_projected_chip_scales_anchor(self):
        chip = get_chip("high-frequency-cmp")
        future = projected_chip(chip, 2027)
        assert future.max_power_w == pytest.approx(
            chip.max_power_w * power_scale(2027))
        assert future.ladder == chip.ladder

    def test_horizon_frequencies_nonincreasing(self, fast_params):
        chip = get_chip("high-frequency-cmp")
        horizon = feasibility_horizon(chip, 4, "water",
                                      years=(2019, 2025, 2031),
                                      params=fast_params)
        vals = list(horizon.values())
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_water_outlives_air(self, fast_params):
        chip = get_chip("high-frequency-cmp")
        years = tuple(range(2019, 2034, 2))
        air = last_feasible_year(chip, 4, "air", years=years,
                                 params=fast_params)
        water = last_feasible_year(chip, 4, "water", years=years,
                                   params=fast_params)
        assert water is not None
        assert air is None or water >= air


class TestMicrochannel:
    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            MicrochannelParams(h_w_m2k=0.0)

    def test_network_structure(self, fast_params):
        chip = get_chip("high-frequency-cmp")
        net = build_microchannel_network(uniform_stack(chip, 3),
                                         params=fast_params)
        names = [la.name for la in net.layers]
        assert names == ["die0", "chan1", "die1", "chan2", "die2"]
        # 2 faces per channel x 2 channels + 2 caps = 6 boundaries.
        assert len(net.boundaries) == 6

    def test_deep_stack_stays_cool(self, fast_params):
        """The related-work claim: per-tier channels remove the stack-
        depth penalty that limits immersion."""
        chip = get_chip("high-frequency-cmp")
        t4 = microchannel_max_temperature_c(uniform_stack(chip, 4),
                                            ghz(3.6), params=fast_params)
        t8 = microchannel_max_temperature_c(uniform_stack(chip, 8),
                                            ghz(3.6), params=fast_params)
        assert t4 < 80.0 and t8 < 80.0
        assert t8 - t4 < 10.0   # nearly depth-independent

    def test_beats_immersion_at_depth(self, fast_params):
        from repro.cooling import get_cooling
        from repro.thermal import ThermalModel
        chip = get_chip("high-frequency-cmp")
        stack = uniform_stack(chip, 8)
        immersion = ThermalModel(stack, get_cooling("water"),
                                 fast_params).max_temperature_c(ghz(3.6))
        channels = microchannel_max_temperature_c(stack, ghz(3.6),
                                                  params=fast_params)
        assert channels < immersion

    def test_weaker_channels_hotter(self, fast_params):
        chip = get_chip("high-frequency-cmp")
        stack = uniform_stack(chip, 4)
        strong = microchannel_max_temperature_c(
            stack, ghz(3.6), MicrochannelParams(h_w_m2k=50_000.0),
            params=fast_params)
        weak = microchannel_max_temperature_c(
            stack, ghz(3.6), MicrochannelParams(h_w_m2k=5_000.0),
            params=fast_params)
        assert weak > strong

    def test_rotation_compatible(self, fast_params):
        from repro.stack import flip_even_layers
        chip = get_chip("high-frequency-cmp")
        t = microchannel_max_temperature_c(flip_even_layers(chip, 4),
                                           ghz(3.6), params=fast_params)
        assert t < 80.0
