"""Regression tests for the performance caches.

The profiling-driven optimizations (cached floorplans, shared per-die
power maps) must be invisible: custom chips bypass the cache, cached
arrays are immutable, and results are identical either way.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.floorplan.library import get_floorplan
from repro.power.processors import get_chip
from repro.stack.chipstack import StackConfig
from repro.thermal.package import DEFAULT_PACKAGE, stack_power_maps
from repro.units import ghz


class TestFloorplanCache:
    def test_same_object_returned(self):
        assert get_floorplan("baseline-16tile") is get_floorplan(
            "baseline-16tile")

    def test_distinct_names_distinct_objects(self):
        assert get_floorplan("baseline-16tile") is not get_floorplan(
            "xeon-e5-2667v4")


class TestPowerMapCache:
    def test_cached_maps_are_readonly(self):
        stack = StackConfig(chip=get_chip("low-power-cmp"), n_chips=1)
        maps = stack_power_maps(stack, ghz(2.0))
        with pytest.raises(ValueError):
            maps["die0"][0, 0] = 99.0

    def test_cache_shared_across_stacks(self):
        a = stack_power_maps(
            StackConfig(chip=get_chip("low-power-cmp"), n_chips=2),
            ghz(2.0))
        b = stack_power_maps(
            StackConfig(chip=get_chip("low-power-cmp"), n_chips=3),
            ghz(2.0))
        assert a["die0"] is b["die0"]

    def test_custom_chip_bypasses_cache(self):
        """A modified ChipSpec (same name, different power) must not be
        served the library chip's cached maps."""
        base = get_chip("low-power-cmp")
        custom = replace(base, max_power_w=base.max_power_w * 2)
        custom_maps = stack_power_maps(
            StackConfig(chip=custom, n_chips=1), ghz(2.0))
        base_maps = stack_power_maps(
            StackConfig(chip=base, n_chips=1), ghz(2.0))
        assert custom_maps["die0"].sum() == pytest.approx(
            2 * base_maps["die0"].sum())
        # And the custom result is writable (freshly built).
        custom_maps["die0"][0, 0] = 0.0

    def test_rotated_maps_differ_from_plain(self):
        plain = stack_power_maps(
            StackConfig(chip=get_chip("high-frequency-cmp"), n_chips=1),
            ghz(3.6))
        rot = stack_power_maps(
            StackConfig(chip=get_chip("high-frequency-cmp"), n_chips=1,
                        rotations=(True,)), ghz(3.6))
        assert not np.allclose(plain["die0"], rot["die0"])
        np.testing.assert_allclose(rot["die0"], plain["die0"][::-1, ::-1])

    def test_grid_resolution_keyed(self):
        stack = StackConfig(chip=get_chip("low-power-cmp"), n_chips=1)
        fine = stack_power_maps(stack, ghz(2.0), DEFAULT_PACKAGE)
        coarse = stack_power_maps(
            stack, ghz(2.0), replace(DEFAULT_PACKAGE, die_grid=8))
        assert fine["die0"].shape != coarse["die0"].shape
        assert fine["die0"].sum() == pytest.approx(
            coarse["die0"].sum(), rel=1e-9)


class TestChartBounds:
    def test_explicit_y_bounds_clip(self):
        from repro.analysis.charts import ascii_chart
        out = ascii_chart({"a": ([0, 1, 2], [0.0, 5.0, 100.0])},
                          y_min=0.0, y_max=10.0)
        # The 100.0 point is outside the canvas; the chart still renders.
        assert "o = a" in out
        assert "10" in out.splitlines()[0]
