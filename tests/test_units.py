"""Tests for repro.units."""

from __future__ import annotations

import pytest

from repro import units


def test_ghz_roundtrip():
    assert units.to_ghz(units.ghz(3.6)) == pytest.approx(3.6)


def test_ghz_scale():
    assert units.ghz(1.0) == 1e9


def test_mhz_constant():
    assert units.MHZ == 1e6


def test_length_helpers():
    assert units.mm(13.0) == pytest.approx(0.013)
    assert units.cm(6.0) == pytest.approx(0.06)
    assert units.um(120.0) == pytest.approx(120e-6)


def test_area_helpers():
    assert units.mm2(169.0) == pytest.approx(169e-6)
    assert units.cm2(36.0) == pytest.approx(36e-4)


def test_area_consistency_with_lengths():
    # 13 mm x 13 mm die = 169 mm**2
    assert units.mm(13.0) ** 2 == pytest.approx(units.mm2(169.0))


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(80.0)) == 80.0


def test_celsius_to_kelvin_offset():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_reference_conditions_match_paper():
    assert units.AMBIENT_C == 25.0
    assert units.THRESHOLD_C == 80.0
    assert units.E5_THRESHOLD_C == 78.0


def test_byte_units():
    assert units.KIB == 1024
    assert units.MIB == 1024 ** 2
    assert units.GIB == 1024 ** 3
