"""Tests for repro.thermal.materials and coolants."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.thermal import coolants, materials


class TestMaterials:
    def test_table2_copper(self):
        assert materials.COPPER.conductivity_w_mk == 400.0

    def test_table2_parylene(self):
        assert materials.PARYLENE.conductivity_w_mk == 0.14

    def test_table2_tim(self):
        assert materials.TIM.conductivity_w_mk == 0.25

    def test_sheet_resistance_parylene_film(self):
        # Table 2: 120 um parylene -> 8.57e-4 m^2 K / W
        r = materials.PARYLENE.sheet_resistance(120e-6)
        assert r == pytest.approx(120e-6 / 0.14)

    def test_sheet_resistance_scales_with_thickness(self):
        r1 = materials.SILICON.sheet_resistance(100e-6)
        r2 = materials.SILICON.sheet_resistance(200e-6)
        assert r2 == pytest.approx(2 * r1)

    def test_sheet_resistance_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            materials.SILICON.sheet_resistance(0.0)

    def test_negative_conductivity_rejected(self):
        with pytest.raises(ConfigurationError):
            materials.Material("bad", conductivity_w_mk=-1.0)

    def test_negative_heat_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            materials.Material("bad", conductivity_w_mk=1.0,
                               volumetric_heat_j_m3k=-1.0)

    def test_lookup_known(self):
        assert materials.get_material("silicon") is materials.SILICON

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown material"):
            materials.get_material("unobtainium")

    def test_names_sorted(self):
        names = materials.material_names()
        assert list(names) == sorted(names)
        assert "parylene" in names


class TestCoolants:
    def test_paper_h_values(self):
        # Section 3.2's exact coefficients.
        assert coolants.AIR.h_w_m2k == 14.0
        assert coolants.MINERAL_OIL.h_w_m2k == 160.0
        assert coolants.FLUORINERT.h_w_m2k == 180.0
        assert coolants.WATER.h_w_m2k == 800.0

    def test_water_is_conductive(self):
        assert not coolants.WATER.dielectric

    def test_others_are_dielectric(self):
        for c in (coolants.AIR, coolants.MINERAL_OIL, coolants.FLUORINERT):
            assert c.dielectric

    def test_convection_conductance(self):
        # Table 2 fin area x water h.
        g = coolants.WATER.convection_conductance(0.3024)
        assert g == pytest.approx(800.0 * 0.3024)

    def test_convection_conductance_rejects_zero_area(self):
        with pytest.raises(ConfigurationError):
            coolants.WATER.convection_conductance(0.0)

    def test_volumetric_heat_water_exceeds_air(self):
        assert (coolants.WATER.volumetric_heat_j_m3k()
                > 1000 * coolants.AIR.volumetric_heat_j_m3k())

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown coolant"):
            coolants.get_coolant("liquid-nitrogen")

    def test_custom_coolant_for_h_sweep(self):
        c = coolants.custom_coolant("probe", h_w_m2k=1200.0)
        assert c.h_w_m2k == 1200.0
        assert c.dielectric

    def test_custom_coolant_rejects_bad_h(self):
        with pytest.raises(ConfigurationError):
            coolants.custom_coolant("probe", h_w_m2k=0.0)

    def test_names_cover_paper_set(self):
        assert set(coolants.coolant_names()) == {
            "air", "mineral_oil", "fluorinert", "water"}
