"""Tests for the MPKI-validation mode and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.perfsim import get_profile, measure_mpki, stream_for_profile


class TestProfiling:
    @pytest.mark.parametrize("name", ["ep", "bt", "cg", "mg", "is"])
    def test_measured_mpki_matches_nominal(self, name):
        p = get_profile(name)
        m = measure_mpki(p, n_instructions=120_000, seed=3)
        assert m.l1_mpki == pytest.approx(p.l1_mpki, rel=0.12, abs=0.6)
        assert m.l2_mpki == pytest.approx(p.l2_mpki, rel=0.12, abs=0.6)

    def test_relative_error_helper(self):
        p = get_profile("cg")
        m = measure_mpki(p, n_instructions=60_000)
        e1, e2 = m.relative_error(p.l1_mpki, p.l2_mpki)
        assert e1 < 0.2 and e2 < 0.2

    def test_stream_probabilities_from_profile(self):
        p = get_profile("cg")
        s = stream_for_profile(p)
        mf = p.mix.memory_fraction
        assert s.p_warm == pytest.approx(
            (p.l1_mpki - p.l2_mpki) / 1000.0 / mf)

    def test_deterministic(self):
        p = get_profile("mg")
        a = measure_mpki(p, n_instructions=30_000, seed=9)
        b = measure_mpki(p, n_instructions=30_000, seed=9)
        assert (a.l1_mpki, a.l2_mpki) == (b.l1_mpki, b.l2_mpki)

    def test_zero_budget_rejected(self):
        with pytest.raises(SimulationError):
            measure_mpki(get_profile("cg"), n_instructions=0)


class TestCli:
    def test_freq_command(self, capsys):
        rc = main(["freq", "--chip", "low-power-cmp", "--chips", "1",
                   "--cooling", "water"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2.0 GHz" in out

    def test_freq_flip(self, capsys):
        rc = main(["freq", "--chips", "4", "--cooling", "water",
                   "--flip"])
        assert rc == 0
        assert "3.6 GHz" in capsys.readouterr().out

    def test_freq_infeasible_exit_code(self, capsys):
        rc = main(["freq", "--chip", "low-power-cmp", "--chips", "15",
                   "--cooling", "air"])
        assert rc == 1
        assert "infeasible" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        rc = main(["sweep", "--chip", "xeon-phi-7290", "--max-chips",
                   "2", "--cooling", "water"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "water" in out and "1.6" in out

    def test_pue_command(self, capsys):
        rc = main(["pue"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "natural water" in out

    def test_maps_command(self, capsys):
        rc = main(["maps", "--chips", "2", "--ghz", "2.0",
                   "--cooling", "water"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "die0" in out and "die1" in out

    def test_npb_command(self, capsys):
        rc = main(["npb", "--chip", "low-power-cmp", "--chips", "6",
                   "--reference", "water_pipe"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "average" in out and "EP" in out

    def test_pareto_command(self, capsys):
        rc = main(["pareto", "--max-chips", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput" in out and "water" in out

    def test_robustness_command(self, capsys):
        rc = main(["robustness", "--draws", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "coolant ordering" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["defrost"])
