"""Tests for the DTM controller extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cooling import get_cooling
from repro.core.dtm import DtmController, DtmPolicy, dtm_vs_static
from repro.errors import ConfigurationError
from repro.power import get_chip
from repro.stack import uniform_stack
from repro.thermal import ThermalModel


@pytest.fixture(scope="module")
def pipe_model(fast_params):
    return ThermalModel(uniform_stack(get_chip("low-power-cmp"), 4),
                        get_cooling("water_pipe"), fast_params)


@pytest.fixture(scope="module")
def pipe_trace(pipe_model):
    controller = DtmController(pipe_model,
                               DtmPolicy(trip_c=80.0, hysteresis_c=2.0))
    return controller.run(30.0)


class TestDtmPolicy:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            DtmPolicy(hysteresis_c=-1.0)
        with pytest.raises(ConfigurationError):
            DtmPolicy(control_period_s=0.0)

    def test_period_must_divide_dt(self, pipe_model):
        with pytest.raises(ConfigurationError, match="multiple"):
            DtmController(pipe_model,
                          DtmPolicy(control_period_s=0.05), dt_s=0.03)


class TestDtmController:
    def test_frequencies_on_ladder(self, pipe_model, pipe_trace):
        ladder = pipe_model.stack.chip.ladder
        for f in np.unique(pipe_trace.f_hz):
            assert ladder.contains(float(f))

    def test_throttles_when_hot(self, pipe_trace):
        # Starts at the top step; a 4-chip pipe stack cannot hold it.
        assert pipe_trace.f_hz.min() < pipe_trace.f_hz.max()

    def test_temperature_bounded_near_trip(self, pipe_trace):
        # Reactive control overshoots by at most ~one control period of
        # heating; far less than the uncontrolled steady state.
        assert pipe_trace.peak_c < 88.0

    def test_violation_time_small(self, pipe_trace):
        assert pipe_trace.violation_time_s() < 0.5 * pipe_trace.times_s[-1]

    def test_mean_frequency_at_least_static(self, pipe_model, pipe_trace):
        """DTM exploits thermal inertia: its delivered average clock is
        never below the static worst-case pick."""
        from repro.core.freqopt import max_frequency
        static = max_frequency(pipe_model)
        assert pipe_trace.mean_frequency_hz >= static.f_hz - 1e3

    def test_cool_configuration_stays_at_max(self, fast_params):
        model = ThermalModel(uniform_stack(get_chip("low-power-cmp"), 1),
                             get_cooling("water"), fast_params)
        trace = DtmController(model, DtmPolicy(trip_c=80.0)).run(10.0)
        assert trace.duty_at_max(model.stack.chip.ladder.f_max_hz) == 1.0

    def test_reproducible(self, pipe_model):
        pol = DtmPolicy(trip_c=80.0)
        a = DtmController(pipe_model, pol).run(5.0)
        b = DtmController(pipe_model, pol).run(5.0)
        np.testing.assert_array_equal(a.f_hz, b.f_hz)

    def test_start_index_respected(self, pipe_model):
        trace = DtmController(pipe_model, DtmPolicy()).run(
            2.0, start_index=0)
        floor = pipe_model.stack.chip.ladder.f_min_hz
        assert trace.f_hz[0] == pytest.approx(floor)

    def test_bad_start_index(self, pipe_model):
        with pytest.raises(ConfigurationError):
            DtmController(pipe_model, DtmPolicy()).run(2.0,
                                                       start_index=99)

    def test_short_duration_rejected(self, pipe_model):
        with pytest.raises(ConfigurationError):
            DtmController(pipe_model, DtmPolicy()).run(0.001)


class TestDtmVsStatic:
    def test_summary_fields(self, pipe_model):
        res = dtm_vs_static(pipe_model, duration_s=10.0)
        assert set(res) == {"dtm_mean_ghz", "static_ghz",
                            "dtm_over_static", "dtm_peak_c"}
        assert res["dtm_over_static"] >= 1.0 - 1e-9
