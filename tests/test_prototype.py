"""Tests for the prototype models: board thermal, reliability, coating."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datasets import paper
from repro.errors import ConfigurationError
from repro.prototype import (
    CAMPAIGN_YEARS,
    MIN_RELIABLE_THICKNESS_M,
    NUM_TEST_BOARDS,
    SCENARIOS,
    TEST_BOARD_COMPONENTS,
    BoardReliability,
    CoatingSpec,
    PrototypeBoardModel,
    WeibullLife,
    fitted_lifetimes,
    fully_coated_board,
    get_component,
    get_environment,
    masked_board,
    recommended_above_water,
    recommended_coating,
    TOKYO_BAY,
)


class TestBoardModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PrototypeBoardModel()

    def test_fig4_air(self, model):
        assert model.junction_c("air") == pytest.approx(
            paper.FIG4_TEMPERATURES_C["air"], abs=1.0)

    def test_fig4_heatsink_in_water(self, model):
        assert model.junction_c("heatsink_in_water") == pytest.approx(
            paper.FIG4_TEMPERATURES_C["heatsink_in_water"], abs=1.0)

    def test_fig4_full_immersion(self, model):
        assert model.junction_c("full_immersion") == pytest.approx(
            paper.FIG4_TEMPERATURES_C["full_immersion"], abs=1.0)

    def test_abstract_20c_gain(self, model):
        assert model.immersion_gain_c() == pytest.approx(
            paper.ABSTRACT_IMMERSION_GAIN_C, abs=1.0)

    def test_sink_cooler_than_junction(self, model):
        for s in SCENARIOS:
            sol = model.solve(s)
            assert sol["sink"] < sol["junction"]

    def test_heatsink_immersion_small_gain(self, model):
        """The paper's structural point: dunking only the sink buys ~5 C
        because the internal junction-to-sink path dominates."""
        gain = (model.junction_c("air")
                - model.junction_c("heatsink_in_water"))
        assert 2.0 < gain < 8.0

    def test_board_path_dominates_full_immersion_gain(self, model):
        gain_sink = (model.junction_c("air")
                     - model.junction_c("heatsink_in_water"))
        gain_full = model.immersion_gain_c()
        assert gain_full > 2 * gain_sink

    def test_unknown_scenario_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.solve("cryogenic")

    def test_invalid_params_rejected(self):
        from repro.prototype import BoardThermalParams
        with pytest.raises(ConfigurationError):
            BoardThermalParams(cpu_power_w=-1.0)


class TestComponents:
    def test_inventory_matches_paper(self):
        for name, failures in paper.TESTBOARD_FAILURES.items():
            assert get_component(name).observed_failures == failures

    def test_campaign_constants(self):
        assert NUM_TEST_BOARDS == paper.TESTBOARD_COUNT
        assert CAMPAIGN_YEARS == paper.TESTBOARD_YEARS

    def test_recommendations_include_paper_list(self):
        above = set(recommended_above_water())
        assert {"pciex4", "rj45", "mpcie", "memory_slot"} <= above

    def test_unknown_component(self):
        with pytest.raises(ConfigurationError):
            get_component("floppy")

    def test_seven_component_classes(self):
        assert len(TEST_BOARD_COMPONENTS) == 7


class TestWeibull:
    def test_survival_decreasing(self):
        w = WeibullLife(scale_years=3.0)
        ts = np.linspace(0, 10, 20)
        s = [w.survival(t) for t in ts]
        assert all(a >= b for a, b in zip(s, s[1:]))

    def test_survival_at_zero_is_one(self):
        assert WeibullLife(2.0).survival(0.0) == 1.0

    def test_failure_complement(self):
        w = WeibullLife(2.0)
        assert w.survival(1.5) + w.failure_probability(1.5) == pytest.approx(
            1.0)

    def test_mean_gamma_formula(self):
        w = WeibullLife(scale_years=2.0, shape=1.0)   # exponential
        assert w.mean_years() == pytest.approx(2.0)

    def test_sampling_reproducible(self):
        w = WeibullLife(2.0)
        a = w.sample(np.random.default_rng(1), 10)
        b = w.sample(np.random.default_rng(1), 10)
        np.testing.assert_array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            WeibullLife(scale_years=0.0)
        with pytest.raises(ConfigurationError):
            WeibullLife(2.0).survival(-1.0)


class TestFittedReliability:
    def test_pciex4_fails_fast(self):
        lives = fitted_lifetimes()
        # All five failed within two years -> high 2-year failure prob.
        assert lives["pciex4"].failure_probability(CAMPAIGN_YEARS) > 0.9

    def test_robust_components_survive(self):
        lives = fitted_lifetimes()
        for name in ("usb", "pga", "mega_avr"):
            assert lives[name].survival(CAMPAIGN_YEARS) > 0.9

    def test_fit_reproduces_expected_failures(self):
        """Expected failures across 5 boards match observations +- 1."""
        lives = fitted_lifetimes()
        for c in TEST_BOARD_COMPONENTS:
            exposed = NUM_TEST_BOARDS * c.per_board
            expected = exposed * lives[c.name].failure_probability(
                CAMPAIGN_YEARS)
            assert expected == pytest.approx(c.observed_failures, abs=1.0)

    def test_masked_board_outlives_fully_coated(self):
        assert (masked_board().median_life_years()
                > fully_coated_board().median_life_years())

    def test_masked_board_couple_of_years(self):
        # The paper: with masking, lifetime "a couple of years" or more.
        assert masked_board().median_life_years() > 2.0

    def test_fully_coated_limited_by_pciex4(self):
        # PCIex4 failed universally; an unmasked board dies early.
        assert fully_coated_board().median_life_years() < 2.0

    def test_monte_carlo_matches_median(self):
        board = masked_board()
        rng = np.random.default_rng(0)
        lifetimes = board.simulate(rng, 4000)
        mc_median = float(np.median(lifetimes))
        assert mc_median == pytest.approx(board.median_life_years(),
                                          rel=0.1)

    def test_unknown_submerged_component_rejected(self):
        board = BoardReliability(component_lives=fitted_lifetimes(),
                                 submerged=("warp_drive",))
        with pytest.raises(ConfigurationError):
            board.survival(1.0)


class TestCoating:
    def test_paper_thicknesses_reliable(self):
        for t in (120e-6, 150e-6):
            assert CoatingSpec(thickness_m=t).reliable

    def test_50um_unreliable(self):
        spec = CoatingSpec(thickness_m=paper.FILM_FAILED_UM * 1e-6)
        assert not spec.reliable
        assert spec.expected_failure_hours() < 24.0

    def test_reliable_film_never_fails_early(self):
        assert CoatingSpec(thickness_m=120e-6).expected_failure_hours() == (
            math.inf)

    def test_validate_rejects_thin_film(self):
        with pytest.raises(ConfigurationError, match="50 um"):
            CoatingSpec(thickness_m=50e-6).validate_for_immersion()

    def test_thermal_resistance(self):
        spec = CoatingSpec(thickness_m=120e-6)
        assert spec.thermal_resistance_m2kw == pytest.approx(120e-6 / 0.14)

    def test_recommended_coating_masks_risky_parts(self):
        spec = recommended_coating()
        assert "pciex4" in spec.masked_regions
        spec.validate_for_immersion()

    def test_min_thickness_between_failed_and_working(self):
        assert (paper.FILM_FAILED_UM * 1e-6 < MIN_RELIABLE_THICKNESS_M
                <= 120e-6)


class TestDeployment:
    def test_tokyo_bay_record(self):
        assert TOKYO_BAY.observed_record_days == paper.TOKYO_BAY_RECORD_DAYS

    def test_biofouling_degrades_h(self):
        h0 = TOKYO_BAY.effective_h(800.0, 0.0)
        h1 = TOKYO_BAY.effective_h(800.0, 1.0)
        assert h0 == pytest.approx(800.0)
        assert h1 < h0
        assert h1 >= 0.2 * 800.0

    def test_tap_water_does_not_degrade(self):
        env = get_environment("tap-water-tank")
        assert env.effective_h(800.0, 5.0) == pytest.approx(800.0)

    def test_all_sites_are_primary_coolant(self):
        # The paper's defining distinction vs Natick/CSCS.
        for name in ("tap-water-tank", "river", "tokyo-bay"):
            assert get_environment(name).is_primary_coolant

    def test_unknown_environment(self):
        with pytest.raises(ConfigurationError):
            get_environment("mars")
