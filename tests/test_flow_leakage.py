"""Tests for the flow-correlation and leakage extensions."""

from __future__ import annotations

import math

import pytest

from repro.cooling.flow import (
    FlowCorrelation,
    oil_flow_correlation,
    water_flow_correlation,
)
from repro.errors import ConfigurationError
from repro.prototype.leakage import (
    FAILURE_CURRENT_A,
    FilmDegradation,
    LeakagePath,
    component_degradation,
    sea_vs_tap_acceleration,
)
from repro.thermal.coolants import WATER


class TestFlowCorrelation:
    def test_natural_anchor_at_zero_velocity(self):
        corr = water_flow_correlation()
        assert corr.h_at(0.0) == pytest.approx(WATER.h_w_m2k)

    def test_h_monotone_in_velocity(self):
        corr = water_flow_correlation()
        hs = [corr.h_at(v) for v in (0.0, 0.2, 0.5, 1.0, 2.0)]
        assert all(a < b for a, b in zip(hs, hs[1:]))

    def test_one_meter_per_second_jacket_range(self):
        # Liquid jackets at ~1 m/s run ~4-8 kW/m2K.
        h = water_flow_correlation().h_at(1.0)
        assert 3000.0 < h < 9000.0

    def test_velocity_roundtrip(self):
        corr = water_flow_correlation()
        v = corr.velocity_for(3000.0)
        assert corr.h_at(v) == pytest.approx(3000.0, rel=1e-9)

    def test_velocity_below_natural_rejected(self):
        with pytest.raises(ConfigurationError, match="natural"):
            water_flow_correlation().velocity_for(500.0)

    def test_oil_gains_less_than_water(self):
        assert (oil_flow_correlation().h_at(1.0)
                < water_flow_correlation().h_at(1.0))

    def test_pumping_power_cubic(self):
        corr = water_flow_correlation()
        p1 = corr.pumping_power_w(1.0, 0.3)
        p2 = corr.pumping_power_w(2.0, 0.3)
        assert p2 == pytest.approx(8 * p1)

    def test_pumping_power_positive_area_required(self):
        with pytest.raises(ConfigurationError):
            water_flow_correlation().pumping_power_w(1.0, 0.0)

    def test_invalid_correlation(self):
        with pytest.raises(ConfigurationError):
            FlowCorrelation(coolant=WATER, c_forced=0.0)

    def test_negative_velocity_rejected(self):
        with pytest.raises(ConfigurationError):
            water_flow_correlation().h_at(-1.0)

    def test_fig14_motivation_velocity_is_modest(self):
        """Section 4.1's 'turbines' remark: doubling water's natural h
        needs only a gentle flow."""
        v = water_flow_correlation().velocity_for(1600.0)
        assert v < 0.5   # m/s


class TestLeakage:
    def test_disk_conductance_formula(self):
        path = LeakagePath(radius_m=5e-6, water_conductivity_s_m=0.05)
        assert path.conductance_s() == pytest.approx(4 * 0.05 * 5e-6)

    def test_current_scales_with_voltage(self):
        path = LeakagePath(radius_m=5e-6)
        assert path.current_a(12.0) == pytest.approx(
            12 * path.conductance_s())

    def test_negative_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            LeakagePath(radius_m=5e-6).current_a(-1.0)

    def test_expected_defects_linear(self):
        deg = FilmDegradation(defect_rate_per_year=10.0)
        assert deg.expected_defects(2.0) == pytest.approx(20.0)

    def test_pciex4_fails_within_campaign(self):
        deg = component_degradation("pciex4")
        assert deg.expected_failure_years(12.0) < 2.0

    def test_flat_components_outlast_campaign(self):
        for name in ("pga", "mega_avr", "usb"):
            deg = component_degradation(name)
            assert deg.expected_failure_years(12.0) > 2.0

    def test_leakage_ordering_matches_campaign(self):
        """Leakage horizons reproduce the Weibull ordering."""
        years = {name: component_degradation(name).expected_failure_years(
            12.0) for name in ("pciex4", "rj45", "pga")}
        assert years["pciex4"] < years["rj45"] < years["pga"]

    def test_zero_rate_never_fails(self):
        deg = FilmDegradation(defect_rate_per_year=0.0)
        assert deg.expected_failure_years(12.0) == math.inf

    def test_sea_water_acceleration(self):
        assert sea_vs_tap_acceleration() == pytest.approx(100.0)

    def test_sea_water_shortens_horizon(self):
        """The Tokyo Bay record (53 days) vs the tap-water years."""
        tap = component_degradation("rj45")
        sea = FilmDegradation(defect_rate_per_year=tap.defect_rate_per_year,
                              water_conductivity_s_m=5.0)
        assert (sea.expected_failure_years(12.0)
                < tap.expected_failure_years(12.0) / 50.0)

    def test_unknown_component(self):
        with pytest.raises(ConfigurationError):
            component_degradation("hdmi")

    def test_threshold_is_milliamp(self):
        assert FAILURE_CURRENT_A == pytest.approx(1e-3)
