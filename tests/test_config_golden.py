"""Declarative experiment specs + golden regression values.

The golden tests pin the key numbers of the calibrated default
configuration so unintended drift (a changed constant, a solver edit)
is caught immediately; intentional recalibration updates them together
with EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

import repro
from repro.config import ExperimentSpec
from repro.errors import ConfigurationError
from repro.units import ghz


class TestExperimentSpec:
    def test_run_matches_quick_api(self):
        spec = ExperimentSpec(chip="high-frequency-cmp", n_chips=4,
                              cooling="water", flip=True)
        res = spec.run()
        quick = repro.quick_max_frequency("high-frequency-cmp", 4,
                                          "water", flip=True)
        assert res.f_ghz == pytest.approx(quick.f_ghz)
        assert res.max_temp_c == pytest.approx(quick.max_temp_c)

    def test_dict_roundtrip(self):
        spec = ExperimentSpec(n_chips=6, cooling="mineral_oil",
                              benchmarks=("cg", "ep"), label="probe")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_with_cooling(self):
        spec = ExperimentSpec().with_cooling("air")
        assert spec.cooling == "air"

    def test_package_overrides_apply(self):
        spec = ExperimentSpec(
            n_chips=2, package_overrides={"die_grid": 8})
        assert spec.package_params().die_grid == 8

    def test_benchmark_subset(self):
        res = ExperimentSpec(n_chips=2, benchmarks=("ep",)).run()
        assert set(res.npb_time_s) == {"ep"}

    def test_infeasible_run(self):
        res = ExperimentSpec(chip="low-power-cmp", n_chips=14,
                             cooling="air").run()
        assert not res.feasible
        assert res.npb_time_s == {}

    def test_speedup_between_specs(self):
        water = ExperimentSpec(chip="low-power-cmp", n_chips=6,
                               cooling="water", benchmarks=("ep",)).run()
        pipe = water.spec.with_cooling("water_pipe").run()
        s = water.speedup_over(pipe)
        assert s["ep"] > 1.0

    def test_speedup_requires_feasible(self):
        ok = ExperimentSpec(n_chips=1).run()
        bad = ExperimentSpec(chip="low-power-cmp", n_chips=14,
                             cooling="air").run()
        with pytest.raises(ConfigurationError):
            ok.speedup_over(bad)

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(n_chips=0)


class TestGoldenValues:
    """Frozen outputs of the calibrated defaults (tolerance one ladder
    step / a fraction of a degree). Update together with EXPERIMENTS.md
    on intentional recalibration only."""

    def test_golden_frequencies(self):
        golden = {
            ("low-power-cmp", 1, "air"): 2.0,
            ("low-power-cmp", 4, "air"): 1.2,
            ("low-power-cmp", 7, "water_pipe"): 1.1,
            ("low-power-cmp", 8, "mineral_oil"): 1.3,
            ("low-power-cmp", 8, "water"): 1.4,
            ("high-frequency-cmp", 4, "water"): 3.2,
            ("high-frequency-cmp", 8, "water"): 2.2,
            ("xeon-e5-2667v4", 3, "water"): 3.2,
            ("xeon-phi-7290", 1, "water"): 1.6,
        }
        for (chip, n, cool), f in golden.items():
            p = repro.quick_max_frequency(chip, n, cool)
            assert p.f_ghz == pytest.approx(f, abs=0.01), (chip, n, cool)

    def test_golden_infeasible(self):
        for chip, n, cool in (
            ("low-power-cmp", 8, "water_pipe"),
            ("low-power-cmp", 6, "air"),
            ("xeon-e5-2667v4", 4, "air"),
            ("xeon-phi-7290", 3, "water_pipe"),
        ):
            assert not repro.quick_max_frequency(chip, n, cool).feasible

    def test_golden_flip_point(self):
        p = repro.quick_max_frequency("high-frequency-cmp", 4, "water",
                                      flip=True)
        assert p.f_ghz == pytest.approx(3.6)
        assert p.max_temp_c == pytest.approx(79.9, abs=0.3)

    def test_golden_prototype(self):
        from repro.prototype import PrototypeBoardModel
        f4 = PrototypeBoardModel().figure4()
        assert f4["air"] == pytest.approx(76.0, abs=0.05)
        assert f4["full_immersion"] == pytest.approx(56.0, abs=0.05)

    def test_golden_headline_band(self):
        from repro.core.cosim import run_npb_comparison
        lp8 = run_npb_comparison("low-power-cmp", 8,
                                 reference="mineral_oil")
        gain = 1.0 - lp8.average_relative("water")
        assert gain == pytest.approx(0.046, abs=0.01)

    def test_golden_npb_relative_cg(self):
        from repro.core.cosim import run_npb_comparison
        lp6 = run_npb_comparison("low-power-cmp", 6,
                                 reference="water_pipe")
        rel = lp6.relative_times("water")
        assert rel["cg"] == pytest.approx(0.874, abs=0.02)
        assert rel["ep"] == pytest.approx(0.757, abs=0.02)
