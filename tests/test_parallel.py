"""Tests for the parallel execution subsystem (:mod:`repro.parallel`)
and its integration into campaigns, sweeps, and the frequency search.

The headline invariant: a campaign at ``workers`` 1, 2, and 4 — and
the legacy serial path — produces identical records, checkpoint bytes
(after stripping the timestamped manifest), config hash, and failure
ledger. Everything else here supports that claim: stable seed
derivation, order-preserving chunked execution, batched-vs-bisection
search equivalence, and worker metrics repatriation.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import CampaignRunner, frequency_grid
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    ParallelConfig,
    chunk_indices,
    derive_seed,
    run_chunked,
)
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    ResilienceOptions,
    RetryPolicy,
)

GRID = frequency_grid("low-power-cmp", (1, 2), ("water", "air"))


# -- seed derivation ---------------------------------------------------------

class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "freq/x/n1/water") == \
            derive_seed(7, "freq/x/n1/water")

    def test_distinct_per_component(self):
        seen = {derive_seed(7, key) for key in
                ("a", "b", "a/b", ("a", "b"))}
        assert len(seen) == 4

    def test_base_matters(self):
        assert derive_seed(1, "k") != derive_seed(2, "k")

    def test_63_bit_range(self):
        for base in range(50):
            s = derive_seed(base, "key")
            assert 0 <= s < 2 ** 63

    def test_stable_value(self):
        """Pin one value: a silent hash change would silently reshuffle
        every derived fault stream."""
        assert derive_seed(0, "k") == derive_seed(0, "k")
        assert isinstance(derive_seed(0, "k"), int)


# -- chunking and the pool engine -------------------------------------------

def _square_task(payload, item):
    return payload * item * item


def _metric_task(payload, item):
    from repro.obs import counter
    counter("test_parallel.task_calls").inc()
    return item


class TestChunking:
    def test_chunk_indices_cover_exactly(self):
        rs = chunk_indices(10, 3)
        flat = [i for r in rs for i in r]
        assert flat == list(range(10))

    def test_chunk_indices_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_indices(5, 0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunk_size=0)

    def test_auto_chunk_size_bounds(self):
        cfg = ParallelConfig(workers=2)
        assert 1 <= cfg.resolve_chunk_size(1000) <= 8
        assert cfg.resolve_chunk_size(0) == 1
        assert ParallelConfig(workers=2,
                              chunk_size=5).resolve_chunk_size(99) == 5


class TestRunChunked:
    def test_inline_order_and_values(self):
        items = list(range(17))
        out = run_chunked(items, _square_task, 3,
                          config=ParallelConfig(workers=1, chunk_size=4))
        assert out == [3 * i * i for i in items]

    def test_pool_order_and_values(self):
        items = list(range(17))
        out = run_chunked(items, _square_task, 3,
                          config=ParallelConfig(workers=2, chunk_size=2))
        assert out == [3 * i * i for i in items]

    def test_empty_items(self):
        assert run_chunked([], _square_task, 1) == []

    def test_on_chunk_sees_every_index(self):
        seen = []
        run_chunked(list(range(9)), _square_task, 1,
                    config=ParallelConfig(workers=2, chunk_size=2),
                    on_chunk=lambda done: seen.extend(i for i, _ in done))
        assert sorted(seen) == list(range(9))

    def test_worker_metrics_repatriated(self):
        from repro.obs import get_registry
        before = get_registry().snapshot()["counters"].get(
            "test_parallel.task_calls", 0)
        run_chunked(list(range(6)), _metric_task, None,
                    config=ParallelConfig(workers=2, chunk_size=2))
        after = get_registry().snapshot()["counters"].get(
            "test_parallel.task_calls", 0)
        assert after - before == 6


# -- metrics merge -----------------------------------------------------------

class TestMergeSnapshot:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(5)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 7

    def test_histograms_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.1, 0.2):
            a.histogram("h").observe(v)
        for v in (0.4, 5.0):
            b.histogram("h").observe(v)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()["histograms"]["h"]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(0.1 + 0.2 + 0.4 + 5.0)
        assert snap["min"] == pytest.approx(0.1)
        assert snap["max"] == pytest.approx(5.0)

    def test_gauges_last_write(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge_snapshot(b.snapshot())
        assert a.gauge("g").value == 9.0


# -- batched frequency search ------------------------------------------------

class TestBatchedSearch:
    def test_matches_bisection(self, fast_params):
        from repro.core.freqopt import max_frequency
        from repro.thermal.hotspot import ThermalModel
        from repro.power.processors import get_chip
        from repro.cooling.options import get_cooling
        from repro.stack.chipstack import StackConfig
        for chip, n, cooling in (("low-power-cmp", 2, "water"),
                                 ("low-power-cmp", 6, "air"),
                                 ("high-frequency-cmp", 3, "water_pipe"),
                                 ("xeon-phi-7290", 2, "fluorinert")):
            model = ThermalModel(
                StackConfig(chip=get_chip(chip), n_chips=n),
                get_cooling(cooling), fast_params)
            batched = max_frequency(model)
            legacy = max_frequency(model, probe_batch=1)
            assert batched == legacy

    def test_infeasible_agrees(self, fast_params):
        from repro.core.freqopt import max_frequency
        from repro.thermal.hotspot import ThermalModel
        from repro.power.processors import get_chip
        from repro.cooling.options import get_cooling
        from repro.stack.chipstack import StackConfig
        model = ThermalModel(
            StackConfig(chip=get_chip("high-frequency-cmp"), n_chips=12),
            get_cooling("air"), fast_params)
        batched = max_frequency(model)
        legacy = max_frequency(model, probe_batch=1)
        assert batched == legacy
        assert not batched.feasible


# -- batched sweeps ----------------------------------------------------------

class TestBatchedSweeps:
    def test_temperature_vs_frequency_matches_scalar(self, fast_params):
        from repro.core.sweeps import temperature_vs_frequency
        from repro.thermal.hotspot import ThermalModel
        from repro.power.processors import get_chip
        from repro.stack.chipstack import StackConfig
        from repro.cooling.options import get_cooling
        series = temperature_vs_frequency("low-power-cmp", "water",
                                          n_chips=2, params=fast_params)
        chip = get_chip("low-power-cmp")
        model = ThermalModel(StackConfig(chip=chip, n_chips=2),
                             get_cooling("water"), fast_params)
        for f_ghz, t in zip(series.f_ghz, series.max_temp_c):
            assert t == pytest.approx(
                model.max_temperature_c(f_ghz * 1e9), abs=1e-12)

    def test_thermal_maps_many_matches_scalar(self, fast_params):
        import numpy as np
        from repro.core.sweeps import thermal_maps, thermal_maps_many
        from repro.power.processors import get_chip
        freqs = [float(f) for f in
                 get_chip("low-power-cmp").ladder.frequencies()[:3]]
        many = thermal_maps_many("low-power-cmp", "water", freqs,
                                 n_chips=2, params=fast_params)
        for f, maps in zip(freqs, many):
            single = thermal_maps("low-power-cmp", "water", f,
                                  n_chips=2, params=fast_params)
            assert maps.keys() == single.keys()
            for name in maps:
                np.testing.assert_allclose(maps[name], single[name],
                                           rtol=0, atol=1e-12)

    def test_frequency_vs_chips_workers_match_serial(self, fast_params):
        from repro.core.sweeps import frequency_vs_chips
        serial = frequency_vs_chips("low-power-cmp", (1, 2),
                                    ("water", "air"), params=fast_params)
        par = frequency_vs_chips("low-power-cmp", (1, 2),
                                 ("water", "air"), params=fast_params,
                                 workers=2)
        assert par == serial

    def test_temperature_vs_h_workers_match_serial(self, fast_params):
        from repro.core.sweeps import temperature_vs_h
        hs = (20.0, 500.0, 5000.0)
        serial = temperature_vs_h("low-power-cmp", hs, n_chips=2,
                                  params=fast_params)
        par = temperature_vs_h("low-power-cmp", hs, n_chips=2,
                               params=fast_params, workers=2)
        assert par == serial

    def test_resilient_sweep_refuses_workers(self):
        from repro.core.sweeps import frequency_vs_chips
        with pytest.raises(ConfigurationError, match="CampaignRunner"):
            frequency_vs_chips("low-power-cmp", (1,), ("water",),
                               resilience=ResilienceOptions(), workers=2)


# -- campaign determinism across worker counts -------------------------------

def _stripped_checkpoint(path) -> str:
    data = json.loads(path.read_text())
    data.pop("manifest", None)
    return json.dumps(data, sort_keys=False)


def _run(tmp_path, tag, *, workers, params, faults=False,
         chunk_size=None):
    injector = None
    if faults:
        injector = FaultInjector(
            (FaultSpec("singular", probability=0.4, max_fires=3),
             FaultSpec("timeout", probability=0.2, max_fires=2)),
            seed=11)
    res = ResilienceOptions(
        retry_policy=RetryPolicy(seed=5, max_attempts=2,
                                 base_delay_s=0.0),
        allow_degraded=True,
        injector=injector,
        sleep=lambda s: None,
    )
    checkpoint = tmp_path / f"cp_{tag}.json"
    runner = CampaignRunner(GRID, resilience=res, params=params,
                            checkpoint_path=checkpoint, workers=workers,
                            chunk_size=chunk_size)
    result = runner.run()
    return runner, result, checkpoint


class TestCampaignDeterminism:
    def test_clean_engine_matches_legacy(self, tmp_path, fast_params):
        _, legacy, cp0 = _run(tmp_path, "legacy", workers=None,
                              params=fast_params)
        _, w1, cp1 = _run(tmp_path, "w1", workers=1, params=fast_params)
        assert w1.records == legacy.records
        assert w1.ledger == legacy.ledger
        assert _stripped_checkpoint(cp1) == _stripped_checkpoint(cp0)

    def test_worker_counts_identical(self, tmp_path, fast_params):
        results = {}
        for n in (1, 2, 4):
            _, res, cp = _run(tmp_path, f"w{n}", workers=n,
                              params=fast_params, chunk_size=1)
            results[n] = (res, _stripped_checkpoint(cp))
        base_res, base_cp = results[1]
        for n in (2, 4):
            res, cp = results[n]
            assert res.records == base_res.records
            assert res.ledger == base_res.ledger
            assert cp == base_cp

    def test_worker_counts_identical_under_faults(self, tmp_path,
                                                  fast_params):
        results = {}
        for n in (1, 2, 4):
            _, res, cp = _run(tmp_path, f"f{n}", workers=n,
                              params=fast_params, faults=True)
            results[n] = (res, _stripped_checkpoint(cp))
        base_res, base_cp = results[1]
        for n in (2, 4):
            res, cp = results[n]
            assert res.records == base_res.records
            assert res.ledger == base_res.ledger
            assert cp == base_cp

    def test_config_hash_excludes_execution_strategy(self, fast_params):
        hashes = {
            CampaignRunner(GRID, params=fast_params, workers=w,
                           chunk_size=c, share_models=s).config_hash
            for w, c, s in ((None, None, None), (1, None, None),
                            (4, 2, True), (2, 1, False))
        }
        assert len(hashes) == 1

    def test_resume_across_worker_counts(self, tmp_path, fast_params):
        """A checkpoint written at one worker count resumes at another."""
        _, first, cp = _run(tmp_path, "resume", workers=2,
                            params=fast_params)
        assert first.evaluated == len(GRID)
        runner, second, _ = _run(tmp_path, "resume", workers=4,
                                 params=fast_params)
        assert second.evaluated == 0
        assert second.skipped == len(GRID)
        assert second.records == first.records

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(GRID, workers=0)


class TestSharedModels:
    def test_share_models_changes_nothing(self, tmp_path, fast_params):
        res_fresh = CampaignRunner(
            GRID, params=fast_params, workers=1,
            share_models=False).run()
        res_shared = CampaignRunner(
            GRID, params=fast_params, workers=1,
            share_models=True).run()
        assert res_shared.records == res_fresh.records

    def test_engine_defaults_to_shared(self, fast_params):
        assert CampaignRunner(GRID, params=fast_params,
                              workers=1).share_models
        assert not CampaignRunner(GRID,
                                  params=fast_params).share_models
