"""Fleet fault injection and incident response.

The acceptance surface of the fault layer:

* plan validation / strict wire round-trip / null-plan normalization,
  and the zero-rate-equals-baseline byte identity;
* timeline generation: deterministic, horizon-bounded, strictly
  alternating fault/repair per resource;
* determinism of faulted runs (same-seed byte identity, worker-count
  byte identity through the wire form);
* the energy ledger closing (< 1e-6 relative) across fault types x
  policies x seeds, including mid-run board retirement and tank
  isolation;
* incident response: jobs requeued and re-placed, pump loss handled
  by the emergency DTM clamp and tank isolation so no board crosses
  the threshold (and demonstrably *does* without isolation), sensor
  faults fooling the policy while the on-die override protects
  silicon;
* availability / MTTR reconciliation against the incident ledger, the
  resilience-ledger bridge, and the ``repro fleet chaos`` CLI
  (including exit 75 on ``PoolClosedError``).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    FLEET_FAULT_KINDS,
    FleetConfig,
    FleetFaultEvent,
    FleetFaultPlan,
    FleetScenario,
    WorkloadConfig,
    generate_fault_timeline,
    incident_ledger_entries,
    simulate,
)

WORKLOAD = WorkloadConfig(rate_per_s=0.3, work_gcycles=400.0)

#: every fault process active at rates that actually fire in-horizon
ALL_FAULTS = FleetFaultPlan(
    aging_years_per_sim_hour=8.0,
    chip_mttf_years=8.0,
    pump_loss_per_tank_hour=0.5,
    fouling_per_tank_hour=0.3,
    sensor_fault_per_tank_hour=0.5,
)

#: small, fast-heating plant where pump loss actually threatens the
#: cap within the horizon (tau ~ 556 s, isolation must trip)
RUNAWAY_FLEET = FleetConfig(
    n_tanks=3, boards_per_tank=8, supply_temp_c=45.0,
    exchange_flow_m3_s=1.0e-4, tank_volume_m3=0.05, idle_power_w=60.0)
RUNAWAY_WORKLOAD = WorkloadConfig(rate_per_s=0.5, work_gcycles=900.0)
PUMP_ONLY = FleetFaultPlan(pump_loss_per_tank_hour=0.8,
                           pump_repair_hours=48.0)


def small_scenario(plan=None, *, policy="thermal-aware", seed=11,
                   hours=0.5):
    return FleetScenario(
        fleet=FleetConfig(n_tanks=3, boards_per_tank=4),
        workload=WORKLOAD, policy=policy, seed=seed,
        duration_s=hours * 3600.0, faults=plan)


def runaway_scenario(plan, *, seed=3, hours=6.0):
    return FleetScenario(fleet=RUNAWAY_FLEET, workload=RUNAWAY_WORKLOAD,
                         seed=seed, duration_s=hours * 3600.0,
                         faults=plan)


class TestFaultPlan:
    def test_null_plan_normalized_away(self):
        sc = small_scenario(FleetFaultPlan())
        assert sc.faults is None
        assert "faults" not in sc.to_dict()

    def test_zero_rate_plan_reproduces_baseline_bytes(self):
        base = simulate(small_scenario(None), keep_events=True)
        zero = simulate(small_scenario(FleetFaultPlan()),
                        keep_events=True)
        assert base.to_json() == zero.to_json()
        assert base.events == zero.events
        assert base.availability is None and zero.availability is None

    def test_wire_round_trip(self):
        sc = small_scenario(ALL_FAULTS)
        data = json.loads(json.dumps(sc.to_dict()))
        back = FleetScenario.from_dict(data)
        assert back == sc
        assert back.faults == ALL_FAULTS

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ConfigurationError, match="pump_rate"):
            FleetFaultPlan.from_dict({"pump_rate": 1.0})

    @pytest.mark.parametrize("field,value", [
        ("aging_years_per_sim_hour", -1.0),
        ("pump_loss_per_tank_hour", -0.1),
        ("fouling_factor", 1.0),
        ("board_repair_hours", 0.0),
        ("coating", "bare"),
        ("emergency_margin_c", -1.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            FleetFaultPlan(**{field: value})

    def test_fault_event_validation(self):
        with pytest.raises(ConfigurationError):
            FleetFaultEvent(0, "fault", "meteor_strike", "tank", 0)
        with pytest.raises(ConfigurationError):
            FleetFaultEvent(0, "fault", "pump_loss", "board", 0)


class TestTimeline:
    def test_deterministic_and_horizon_bounded(self):
        cfg = FleetConfig(n_tanks=3, boards_per_tank=4)
        a = generate_fault_timeline(ALL_FAULTS, cfg, 11, 1800.0)
        b = generate_fault_timeline(ALL_FAULTS, cfg, 11, 1800.0)
        assert a == b and len(a) > 0
        assert all(fe.time_us < 1_800_000_000 for fe in a)
        assert generate_fault_timeline(ALL_FAULTS, cfg, 12, 1800.0) != a

    def test_per_stream_alternation(self):
        # alternation holds per independent renewal stream: one wear
        # stream per board, and pump / fouling / sensor streams per
        # tank (sensor_stuck and sensor_offset share the sensor one)
        streams = {"board_retire": "wear", "chip_death": "wear",
                   "pump_loss": "pump", "fouling": "fouling",
                   "sensor_stuck": "sensor", "sensor_offset": "sensor"}
        cfg = FleetConfig(n_tanks=4, boards_per_tank=8)
        tl = generate_fault_timeline(ALL_FAULTS, cfg, 5, 4 * 3600.0)
        per_resource: dict[tuple, list] = {}
        for fe in tl:
            per_resource.setdefault(
                (fe.scope, fe.index, streams[fe.kind]), []).append(fe)
        for events in per_resource.values():
            events.sort(key=lambda fe: fe.time_us)
            for i, fe in enumerate(events):
                assert fe.action == ("fault" if i % 2 == 0 else "repair")
                if fe.action == "repair":
                    assert fe.kind == events[i - 1].kind
                    assert fe.time_us > events[i - 1].time_us

    def test_scopes_match_kind_table(self):
        cfg = FleetConfig(n_tanks=3, boards_per_tank=4)
        for fe in generate_fault_timeline(ALL_FAULTS, cfg, 7, 3600.0):
            assert FLEET_FAULT_KINDS[fe.kind] == fe.scope
            limit = (cfg.n_boards if fe.scope == "board"
                     else cfg.n_tanks)
            assert 0 <= fe.index < limit

    def test_coated_boards_fail_faster_than_masked(self):
        cfg = FleetConfig(n_tanks=2, boards_per_tank=16)
        masked = generate_fault_timeline(
            FleetFaultPlan(aging_years_per_sim_hour=4.0),
            cfg, 9, 4 * 3600.0)
        coated = generate_fault_timeline(
            FleetFaultPlan(aging_years_per_sim_hour=4.0,
                           coating="coated"),
            cfg, 9, 4 * 3600.0)
        n_masked = sum(fe.action == "fault" for fe in masked)
        n_coated = sum(fe.action == "fault" for fe in coated)
        assert n_coated > n_masked


class TestFaultedDeterminism:
    def test_same_seed_byte_identity(self):
        sc = small_scenario(ALL_FAULTS)
        a = simulate(sc, keep_events=True)
        b = simulate(sc, keep_events=True)
        assert a.events == b.events
        assert a.event_digest == b.event_digest
        assert a.to_json() == b.to_json()

    def test_wire_round_trip_identity(self):
        sc = small_scenario(ALL_FAULTS)
        direct = simulate(sc)
        rebuilt = simulate(FleetScenario.from_dict(
            json.loads(json.dumps(sc.to_dict()))))
        assert direct.to_json() == rebuilt.to_json()

    @pytest.mark.parametrize("workers", [None, 2, 4])
    def test_worker_count_identity(self, workers):
        from repro.fleet import results_json, run_scenarios

        scenarios = [small_scenario(ALL_FAULTS, policy=p, seed=s)
                     for p in ("thermal-aware", "round-robin")
                     for s in (0, 1)]
        doc = results_json(run_scenarios(scenarios, workers=workers))
        if not hasattr(type(self), "_reference"):
            type(self)._reference = doc
        assert doc == type(self)._reference

    def test_fault_events_in_canonical_log(self):
        r = simulate(small_scenario(ALL_FAULTS), keep_events=True)
        kinds = {json.loads(line)["ev"] for line in r.events}
        assert "fault" in kinds and "repair" in kinds
        for line in r.events:
            rec = json.loads(line)
            if rec["ev"] == "fault":
                assert rec["kind"] in FLEET_FAULT_KINDS


class TestConservationUnderFaults:
    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded",
                                        "thermal-aware"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ledger_closes_all_fault_types(self, policy, seed):
        r = simulate(small_scenario(ALL_FAULTS, policy=policy,
                                    seed=seed))
        assert r.conservation_relative_residual < 1e-6
        assert (r.generated_j
                == pytest.approx(r.removed_j + r.stored_j, rel=1e-9))

    @pytest.mark.parametrize("seed", [3, 4])
    def test_ledger_closes_through_isolation(self, seed):
        r = simulate(runaway_scenario(PUMP_ONLY, seed=seed))
        assert r.availability["isolations"] > 0
        assert r.conservation_relative_residual < 1e-6

    def test_ledger_closes_without_isolation_runaway(self):
        plan = FleetFaultPlan(pump_loss_per_tank_hour=0.8,
                              pump_repair_hours=48.0,
                              isolate_on_pump_loss=False)
        r = simulate(runaway_scenario(plan))
        assert r.conservation_relative_residual < 1e-6

    def test_ledger_closes_mid_run_retirement(self):
        plan = FleetFaultPlan(aging_years_per_sim_hour=12.0,
                              chip_mttf_years=6.0)
        r = simulate(small_scenario(plan, hours=1.0))
        assert r.availability["incidents_total"] > 0
        assert r.conservation_relative_residual < 1e-6


class TestIncidentResponse:
    def test_board_retirement_requeues_and_replaces(self):
        plan = FleetFaultPlan(aging_years_per_sim_hour=12.0)
        r = simulate(small_scenario(plan, hours=1.0))
        av = r.availability
        assert av["by_kind"].get("board_retire", 0) > 0
        assert av["jobs_requeued"] >= 0
        # nothing lost: every arrival is completed, queued, or running
        assert (r.jobs_completed + r.jobs_pending_end
                + r.jobs_running_end == r.jobs_arrived)
        assert av["availability"] < 1.0

    def test_pump_loss_keeps_boards_under_threshold(self):
        r = simulate(runaway_scenario(PUMP_ONLY))
        av = r.availability
        threshold = RUNAWAY_FLEET.effective_threshold_c()
        assert av["by_kind"].get("pump_loss", 0) > 0
        assert av["emergency_clamp_steps"] > 0
        assert av["isolations"] > 0
        assert av["peak_board_temp_c"] <= threshold
        assert r.max_water_temp_c <= threshold

    def test_runaway_without_isolation(self):
        plan = FleetFaultPlan(pump_loss_per_tank_hour=0.8,
                              pump_repair_hours=48.0,
                              isolate_on_pump_loss=False)
        r = simulate(runaway_scenario(plan))
        threshold = RUNAWAY_FLEET.effective_threshold_c()
        # the emergency clamp alone cannot stop idle-power runaway:
        # stalled boards sit at water temperature past the cap
        assert r.availability["peak_board_temp_c"] > threshold
        assert r.max_water_temp_c > threshold

    def test_sensor_fault_fools_policy_not_silicon(self):
        plan = FleetFaultPlan(sensor_fault_per_tank_hour=2.0,
                              sensor_offset_c=-30.0,
                              sensor_repair_hours=6.0)
        sc = FleetScenario(fleet=RUNAWAY_FLEET,
                           workload=RUNAWAY_WORKLOAD, seed=1,
                           duration_s=3 * 3600.0, faults=plan)
        r = simulate(sc)
        av = r.availability
        threshold = RUNAWAY_FLEET.effective_threshold_c()
        assert (av["by_kind"].get("sensor_stuck", 0)
                + av["by_kind"].get("sensor_offset", 0)) > 0
        # the cold-reading sensor would allow too high a step; the
        # on-die override must have tightened it at least once
        assert av["dtm_override_steps"] > 0
        assert av["peak_board_temp_c"] <= threshold

    def test_fouling_degrades_heat_removal(self):
        plan = FleetFaultPlan(fouling_per_tank_hour=1.0,
                              fouling_factor=0.1,
                              pump_repair_hours=30.0)
        r_f = simulate(small_scenario(plan, hours=1.0))
        r_0 = simulate(small_scenario(None, hours=1.0))
        assert r_f.availability["by_kind"].get("fouling", 0) > 0
        assert r_f.max_water_temp_c > r_0.max_water_temp_c

    def test_repairs_restore_capacity(self):
        plan = FleetFaultPlan(aging_years_per_sim_hour=12.0,
                              board_repair_hours=0.2,
                              chip_repair_hours=0.2,
                              chip_mttf_years=6.0)
        r = simulate(small_scenario(plan, hours=2.0))
        av = r.availability
        assert av["repairs"] > 0
        assert av["mttr_hours"] is not None
        assert av["mttr_hours"] > 0.0


class TestAvailabilityReconciliation:
    @staticmethod
    def _down_steps_from_incidents(result) -> int:
        """Recompute board-steps down from the incident ledger alone:
        board b is down at step k when any covering incident retires it
        or isolates its tank (union semantics — no double counting)."""
        cfg = result.scenario.fleet
        step_us = int(round(cfg.step_s * 1e6))
        bpt = cfg.boards_per_tank
        down = 0
        for k in range(result.steps):
            t = k * step_us
            for b in range(cfg.n_boards):
                for inc in result.incidents:
                    if inc["t_start_us"] > t:
                        continue
                    if (inc["t_end_us"] is not None
                            and inc["t_end_us"] <= t):
                        continue
                    if (inc["scope"] == "board" and inc["index"] == b
                            and inc["kind"] in ("board_retire",
                                                "chip_death")):
                        down += 1
                        break
                    if (inc["kind"] == "tank_isolated"
                            and inc["index"] == b // bpt):
                        down += 1
                        break
        return down

    @pytest.mark.parametrize("scenario_fn", [
        lambda: small_scenario(
            FleetFaultPlan(aging_years_per_sim_hour=12.0,
                           chip_mttf_years=6.0), hours=1.0),
        lambda: runaway_scenario(PUMP_ONLY, hours=4.0),
    ])
    def test_availability_matches_incident_ledger(self, scenario_fn):
        r = simulate(scenario_fn())
        av = r.availability
        assert av["incidents_total"] == len(r.incidents)
        expected_down = self._down_steps_from_incidents(r)
        assert av["board_steps_down"] == expected_down
        total = r.steps * r.scenario.fleet.n_boards
        assert av["board_steps_total"] == total
        assert av["availability"] == pytest.approx(
            1.0 - expected_down / total)

    def test_mttr_matches_closed_incidents(self):
        r = simulate(runaway_scenario(PUMP_ONLY, hours=4.0,
                                      seed=3))
        closed = [i for i in r.incidents
                  if i["t_end_us"] is not None]
        av = r.availability
        assert av["repairs"] == len(closed)
        assert av["incidents_open"] == len(r.incidents) - len(closed)
        if closed:
            expected = (sum(i["t_end_us"] - i["t_start_us"]
                            for i in closed) / len(closed) / 3.6e9)
            assert av["mttr_hours"] == pytest.approx(expected)

    def test_goodput_is_completed_work_rate(self):
        r = simulate(small_scenario(ALL_FAULTS))
        assert r.availability["goodput_gcps"] == pytest.approx(
            r.completed_work_gcycles / r.duration_s)


class TestLedgerBridge:
    def test_entries_round_trip_resilience_schema(self):
        from repro.core.campaign import LedgerEntry

        r = simulate(small_scenario(ALL_FAULTS))
        entries = incident_ledger_entries(r)
        assert len(entries) == len(r.incidents)
        for e in entries:
            d = json.loads(json.dumps(e.to_dict()))
            back = LedgerEntry.from_dict(d)
            assert back.to_dict() == e.to_dict()
            assert back.point.kind == "fleet"
            assert back.rungs_tried == ("incident-response",)

    def test_campaign_point_accepts_fleet_kind(self):
        from repro.core.campaign import CampaignPoint

        p = CampaignPoint(kind="fleet", chip="low-power-cmp",
                          n_chips=4, cooling="water")
        assert p.key == "fleet/low-power-cmp/n4/water"
        with pytest.raises(ConfigurationError):
            CampaignPoint(kind="tank", chip="low-power-cmp",
                          n_chips=4, cooling="water")

    def test_faultless_result_yields_no_entries(self):
        r = simulate(small_scenario(None))
        assert incident_ledger_entries(r) == []


class TestServeDegradedProvenance:
    def test_faulted_run_marks_degraded_capacity(self):
        from repro.serve.runner import run_fleet_resilient

        sc = small_scenario(ALL_FAULTS)
        outcome = run_fleet_resilient(sc)
        assert outcome.rung == "full"
        assert outcome.degraded is True
        assert outcome.result.to_json() == simulate(sc).to_json()

    def test_fault_free_run_stays_undegraded(self):
        from repro.serve.runner import run_fleet_resilient

        outcome = run_fleet_resilient(small_scenario(None))
        assert outcome.rung == "full"
        assert outcome.degraded is False


class TestChaosCli:
    CHAOS_ARGS = ["fleet", "chaos", "--tanks", "2", "--boards", "4",
                  "--hours", "1", "--rate", "0.2", "--seed", "0"]

    def test_chaos_writes_checked_ledger_and_campaign(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        ledger = tmp_path / "ledger.json"
        out = tmp_path / "campaign.json"
        rc = main(self.CHAOS_ARGS
                  + ["--policies", "thermal-aware",
                     "--ledger-out", str(ledger), "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "integrity ok" in printed
        assert "avail" in printed
        entries = json.loads(ledger.read_text(encoding="utf-8"))
        assert entries and all(e["point"]["kind"] == "fleet"
                               for e in entries)
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["kind"] == "fleet-campaign"
        assert all("availability" in r for r in doc["results"])

    def test_chaos_zero_rates_match_plain_sweep(self, tmp_path,
                                                capsys):
        from repro.cli import main

        chaos_out = tmp_path / "chaos.json"
        sweep_out = tmp_path / "sweep.json"
        zeroed = ["--aging", "0", "--chip-mttf", "0", "--pump-loss",
                  "0", "--fouling", "0", "--sensor", "0"]
        assert main(self.CHAOS_ARGS + zeroed
                    + ["--policies", "thermal-aware",
                       "--out", str(chaos_out)]) == 0
        assert main(["fleet", "sweep", "--tanks", "2", "--boards", "4",
                     "--hours", "1", "--rate", "0.2", "--seed", "0",
                     "--policies", "thermal-aware",
                     "--out", str(sweep_out)]) == 0
        assert chaos_out.read_bytes() == sweep_out.read_bytes()

    def test_chaos_rejects_model_site_injection(self, capsys):
        from repro.cli import main

        rc = main(self.CHAOS_ARGS + ["--inject", "nan_power:1.0"])
        assert rc == 2

    def test_chaos_composes_process_faults(self, capsys):
        from repro.cli import main

        rc = main(self.CHAOS_ARGS
                  + ["--policies", "thermal-aware", "--workers", "2",
                     "--inject", "worker_kill:1.0:1"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "process faults on" in printed

    @pytest.mark.parametrize("verb,extra", [
        ("run", []),
        ("sweep", ["--policies", "thermal-aware"]),
        ("chaos", ["--policies", "thermal-aware"]),
    ])
    def test_pool_closed_exits_75(self, verb, extra, monkeypatch):
        from repro.cli import main
        from repro.errors import PoolClosedError

        def boom(*args, **kwargs):
            raise PoolClosedError("pool shut down mid-campaign")

        monkeypatch.setattr("repro.fleet.sim.simulate", boom)
        monkeypatch.setattr("repro.fleet.sim.run_scenarios", boom)
        rc = main(["fleet", verb, "--tanks", "2", "--boards", "3",
                   "--hours", "0.25", "--rate", "0.2"] + extra)
        assert rc == 75


class TestReliabilityQuantile:
    def test_quantile_inverts_cdf(self):
        from repro.prototype.reliability import WeibullLife

        life = WeibullLife(scale_years=5.0, shape=1.6)
        for p in (0.0, 0.1, 0.5, 0.9):
            assert life.failure_probability(
                life.quantile(p)) == pytest.approx(p, abs=1e-12)
        with pytest.raises(ConfigurationError):
            life.quantile(1.0)

    def test_lifetime_from_uniforms_is_series_minimum(self):
        from repro.prototype.reliability import masked_board

        rel = masked_board()
        us = [0.5] * len(rel.submerged)
        expected = min(rel.component_lives[name].quantile(0.5)
                       for name in rel.submerged)
        assert rel.lifetime_from_uniforms(us) == pytest.approx(expected)
        with pytest.raises(ConfigurationError):
            rel.lifetime_from_uniforms([0.5])

    def test_empty_series_is_immortal(self):
        from repro.prototype.reliability import (BoardReliability,
                                                 fitted_lifetimes)

        rel = BoardReliability(component_lives=fitted_lifetimes(),
                               submerged=())
        assert rel.lifetime_from_uniforms([]) == math.inf
