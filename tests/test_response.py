"""Superposition kernel: exactness, content addressing, store safety.

The response operator's contract has three legs, each pinned here:

* *exactness* — for the linear (temperature-independent) power model,
  ``t0 + R @ p`` must match :meth:`ThermalNetwork.solve` to tight
  tolerance for arbitrary block power vectors, any rotation schedule,
  and every coolant;
* *determinism* — batched and scalar queries are bitwise identical,
  and campaign checkpoints are byte-identical whether the operator
  store is cold, warm, or absent, at every worker count;
* *store safety* — corrupted or truncated ``.npy`` entries are
  quarantined to ``*.corrupt`` and transparently rebuilt, mirroring
  the checkpoint discipline.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cooling.options import get_cooling
from repro.core.campaign import CampaignRunner, frequency_grid
from repro.core.feedback import solve_with_leakage_feedback
from repro.obs import get_registry
from repro.power.processors import get_chip
from repro.stack.chipstack import StackConfig, flip_even_layers
from repro.thermal.hotspot import ThermalModel
from repro.thermal.response import (
    DISABLE_ENV,
    STORE_DIR_ENV,
    ResponseCache,
    ResponseStore,
    block_power_vector,
    build_response_operator,
    geometry_digest,
)

ALL_COOLINGS = ("air", "water_pipe", "mineral_oil", "fluorinert", "water")


def _sparse_reference(stack, cooling, params, p):
    """Per-die maxima via the sparse path for an arbitrary power vector."""
    from repro.thermal.package import build_network, die_layer_names
    network = build_network(stack, cooling, params)
    fps = stack.die_floorplans()
    nb = len(fps[0].blocks)
    maps = {}
    for i, (die, fp) in enumerate(zip(die_layer_names(stack), fps)):
        seg = p[i * nb:(i + 1) * nb]
        watts = {b.name: float(w) for b, w in zip(fp.blocks, seg)}
        maps[die] = fp.power_map(watts, params.die_grid, params.die_grid)
    res = network.solve(maps)
    return tuple(res.max_of(d) for d in die_layer_names(stack))


class TestExactness:
    """R @ P against the sparse solver — the kernel's admission gate."""

    @pytest.mark.parametrize("cooling_name", ALL_COOLINGS)
    @pytest.mark.parametrize("flipped", (False, True))
    def test_random_power_maps_match_sparse(self, cooling_name, flipped,
                                            fast_params):
        chip = get_chip("low-power-cmp")
        stack = (flip_even_layers(chip, 3) if flipped
                 else StackConfig(chip=chip, n_chips=3))
        cooling = get_cooling(cooling_name)
        op = build_response_operator(stack, cooling, fast_params)
        rng = np.random.default_rng(2019)
        for _ in range(3):
            p = rng.uniform(0.0, 2.0, size=op.n_cols)
            got = op.per_die_max(op.temperatures(p))
            want = _sparse_reference(stack, cooling, fast_params, p)
            assert got == pytest.approx(want, abs=1e-9)

    def test_ladder_queries_match_sparse_fallback(self, fast_params,
                                                  monkeypatch):
        chip = get_chip("low-power-cmp")
        stack = StackConfig(chip=chip, n_chips=4)
        cooling = get_cooling("water")
        freqs = [float(f) for f in chip.ladder.frequencies()]

        monkeypatch.setenv(DISABLE_ENV, "1")
        sparse = ThermalModel(stack, cooling, fast_params)
        want = sparse.max_temperatures_many(freqs)
        want_fields = sparse.die_temperature_fields(freqs[0])
        assert sparse.response_operator() is None

        monkeypatch.delenv(DISABLE_ENV)
        dense = ThermalModel(stack, cooling, fast_params)
        assert dense.response_operator() is not None
        got = dense.max_temperatures_many(freqs)
        assert got == pytest.approx(want, abs=1e-9)
        got_fields = dense.die_temperature_fields(freqs[0])
        for name in want_fields:
            np.testing.assert_allclose(got_fields[name],
                                       want_fields[name], atol=1e-9)

    def test_batched_equals_scalar_bitwise(self, lp_water_4):
        """The byte-identity guarantee rides on this being *exact*."""
        freqs = [float(f)
                 for f in lp_water_4.stack.chip.ladder.frequencies()]
        batched = lp_water_4.max_temperatures_many(freqs)
        scalar = tuple(lp_water_4.max_temperature_c(f) for f in freqs)
        assert batched == scalar          # bitwise, not approx

    def test_feedback_fixed_point_matches_sparse(self, fast_params,
                                                 monkeypatch):
        chip = get_chip("low-power-cmp")
        stack = StackConfig(chip=chip, n_chips=3)
        cooling = get_cooling("water")
        f = chip.ladder.f_max_hz

        monkeypatch.setenv(DISABLE_ENV, "1")
        want = solve_with_leakage_feedback(
            ThermalModel(stack, cooling, fast_params), f)
        monkeypatch.delenv(DISABLE_ENV)
        got = solve_with_leakage_feedback(
            ThermalModel(stack, cooling, fast_params), f)
        assert not got.runaway
        assert got.max_temp_c == pytest.approx(want.max_temp_c, abs=1e-6)
        assert got.one_shot_temp_c == pytest.approx(want.one_shot_temp_c,
                                                    abs=1e-6)
        assert got.chip_power_w == pytest.approx(want.chip_power_w,
                                                 abs=1e-9)


class TestGeometryDigest:
    """Content addressing: what keys alike, what keys apart."""

    def test_same_geometry_same_digest(self, fast_params):
        chip = get_chip("low-power-cmp")
        a = geometry_digest(StackConfig(chip, 3), get_cooling("water"),
                            fast_params)
        b = geometry_digest(StackConfig(chip, 3), get_cooling("water"),
                            fast_params)
        assert a == b

    def test_geometry_changes_change_the_digest(self, fast_params):
        chip = get_chip("low-power-cmp")
        base = geometry_digest(StackConfig(chip, 3), get_cooling("water"),
                               fast_params)
        assert geometry_digest(StackConfig(chip, 4),
                               get_cooling("water"), fast_params) != base
        assert geometry_digest(StackConfig(chip, 3),
                               get_cooling("air"), fast_params) != base
        assert geometry_digest(flip_even_layers(chip, 3),
                               get_cooling("water"), fast_params) != base
        coarser = replace(fast_params, die_grid=4)
        assert geometry_digest(StackConfig(chip, 3),
                               get_cooling("water"), coarser) != base

    def test_power_model_does_not_affect_the_digest(self, fast_params):
        """Two chips sharing a floorplan share operators."""
        chip = get_chip("low-power-cmp")
        hotter = replace(chip, max_power_w=chip.max_power_w * 2)
        a = geometry_digest(StackConfig(chip, 3), get_cooling("water"),
                            fast_params)
        b = geometry_digest(StackConfig(hotter, 3), get_cooling("water"),
                            fast_params)
        assert a == b


class TestStore:
    """The on-disk tier: atomicity, mmap loads, quarantine."""

    def _build(self, fast_params, n_chips=2):
        chip = get_chip("low-power-cmp")
        stack = StackConfig(chip=chip, n_chips=n_chips)
        cooling = get_cooling("water")
        op = build_response_operator(stack, cooling, fast_params)
        return stack, op

    def test_roundtrip_is_bitwise(self, tmp_path, fast_params):
        stack, op = self._build(fast_params)
        store = ResponseStore(tmp_path)
        assert store.store(op)
        loaded = store.load(op.digest)
        assert loaded is not None
        assert isinstance(loaded.arr, np.memmap)
        assert np.array_equal(np.asarray(loaded.arr), op.arr)
        f = stack.chip.ladder.f_max_hz
        p = block_power_vector(stack, f)
        assert (loaded.temperatures(p) == op.temperatures(p)).all()

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert ResponseStore(tmp_path).load("0" * 64) is None

    @pytest.mark.parametrize("damage", ("truncate", "garbage_header"))
    def test_corrupt_entry_quarantined_and_rebuilt(self, damage, tmp_path,
                                                   fast_params,
                                                   monkeypatch):
        """Satellite: evict-and-rebuild safety (mirrors checkpoint
        ``.corrupt`` handling)."""
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        chip = get_chip("low-power-cmp")
        stack = StackConfig(chip=chip, n_chips=2)
        cooling = get_cooling("water")
        digest = geometry_digest(stack, cooling, fast_params)

        def factory():
            return build_response_operator(stack, cooling, fast_params)

        reference = ResponseCache(capacity=4).get_or_build(digest, factory)
        npy = tmp_path / f"{digest}.npy"
        assert npy.exists()

        if damage == "truncate":
            npy.write_bytes(npy.read_bytes()[:200])
        else:
            npy.write_bytes(b"not a numpy file at all")

        before = get_registry().snapshot()["counters"].get(
            "response.disk_corrupt", 0)
        rebuilt = ResponseCache(capacity=4).get_or_build(digest, factory)

        # quarantined, counted, and rebuilt with the right answer
        assert (tmp_path / f"{digest}.npy.corrupt").exists()
        after = get_registry().snapshot()["counters"]["response.disk_corrupt"]
        assert after == before + 1
        assert np.array_equal(np.asarray(rebuilt.arr),
                              np.asarray(reference.arr))
        # ... and the store was rewritten: a third cache disk-hits
        assert ResponseStore(tmp_path).load(digest) is not None

    def test_lru_evicts_and_counts(self, fast_params, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        cache = ResponseCache(capacity=1)
        chip = get_chip("low-power-cmp")
        cooling = get_cooling("water")
        stacks = [StackConfig(chip=chip, n_chips=n) for n in (1, 2)]
        for stack in stacks:
            cache.get_or_build(
                geometry_digest(stack, cooling, fast_params),
                lambda s=stack: build_response_operator(s, cooling,
                                                        fast_params))
        hits, misses, evictions, capacity, currsize = cache.cache_info()
        assert (misses, evictions, currsize) == (2, 1, 1)
        # re-fetching the resident entry is a pure memory hit
        cache.get_or_build(
            geometry_digest(stacks[1], cooling, fast_params),
            lambda: pytest.fail("must not rebuild a resident operator"))
        assert cache.cache_info()[0] == hits + 1


class TestCheckpointByteIdentity:
    """Acceptance: cache on/off and every worker count, same bytes."""

    def _run(self, tmp_path, fast_params, name, *, workers,
             store_dir=None):
        from repro.thermal.hotspot import model_cache
        from repro.thermal.response import response_cache
        model_cache().clear()
        response_cache().clear()   # force every run through the store
        points = frequency_grid("low-power-cmp", (1, 2), ("water", "air"))
        ck = tmp_path / f"{name}.json"
        CampaignRunner(points, checkpoint_path=ck, params=fast_params,
                       workers=workers,
                       response_cache_dir=store_dir).run(resume=False)
        data = json.loads(ck.read_text())
        data.pop("manifest", None)
        return json.dumps(data, sort_keys=False)

    def test_workers_and_store_do_not_change_the_bytes(self, tmp_path,
                                                       fast_params,
                                                       monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, "")   # baseline: no disk store
        baseline = self._run(tmp_path, fast_params, "plain", workers=None)
        store = tmp_path / "opstore"
        for workers in (None, 2, 4):
            got = self._run(tmp_path, fast_params, f"w{workers}",
                            workers=workers, store_dir=store)
            assert got == baseline, (
                f"checkpoint bytes diverged at workers={workers} "
                f"with a {'warm' if workers else 'cold'} operator store")
        # the store was actually exercised
        assert list(store.glob("*.npy"))
