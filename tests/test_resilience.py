"""Tests for the resilience subsystem: faults, retry, degradation."""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest

from repro.cooling.options import get_cooling
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    DegradedResultWarning,
    InfeasibleError,
    ReproError,
    SimulationError,
    SingularNetworkError,
    ThermalModelError,
    TransientSolverError,
    VFSRangeError,
)
from repro.power.processors import get_chip
from repro.resilience import ResilienceOptions
from repro.resilience.degrade import (
    DegradationLadder,
    freq_point_rungs,
    noc_cycles_flitlevel,
    perf_model_rungs,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    FaultyThermalModel,
    corrupt_power_maps,
    drop_vfs_steps,
    make_floating_island,
)
from repro.resilience.retry import (
    RetryPolicy,
    classify_error,
    with_retry,
)
from repro.stack.chipstack import StackConfig
from repro.thermal.analytic import AnalyticStackModel
from repro.thermal.hotspot import ThermalModel


# -- fault specs and injector ------------------------------------------------

class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="singular", probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="singular", probability=-0.1)

    def test_max_fires_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="singular", max_fires=0)

    def test_site_mapping(self):
        assert FaultSpec("singular").site == "thermal"
        assert FaultSpec("nan_power").site == "power"
        assert FaultSpec("drop_vfs").site == "vfs"
        assert FaultSpec("noc_stall").site == "noc"

    def test_parse_forms(self):
        assert FaultSpec.parse("singular") == FaultSpec("singular")
        assert FaultSpec.parse("timeout:0.25") == FaultSpec(
            "timeout", probability=0.25)
        assert FaultSpec.parse("singular:1:2") == FaultSpec(
            "singular", probability=1.0, max_fires=2)

    def test_parse_malformed(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            FaultSpec.parse("a:b:c:d")

    def test_every_kind_has_a_site(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind).site in FAULT_KINDS.values()


class TestFaultInjector:
    def make(self, seed=7, prob=0.5):
        return FaultInjector(
            (FaultSpec("singular", probability=prob),), seed=seed)

    def test_same_seed_same_sequence(self):
        """Acceptance: identical seeds replay the same fault sequence."""
        a, b = self.make(seed=3), self.make(seed=3)
        for _ in range(40):
            a.draw("thermal")
            b.draw("thermal")
        assert a.events == b.events
        assert len(a.events) > 0

    def test_different_seed_different_sequence(self):
        a, b = self.make(seed=3), self.make(seed=4)
        for _ in range(40):
            a.draw("thermal")
            b.draw("thermal")
        assert a.events != b.events

    def test_reset_replays(self):
        inj = self.make(seed=3)
        for _ in range(20):
            inj.draw("thermal")
        first = inj.events
        inj.reset()
        for _ in range(20):
            inj.draw("thermal")
        assert inj.events == first

    def test_disabled_is_noop(self):
        """Acceptance: a disabled injector never perturbs anything."""
        inj = FaultInjector((FaultSpec("singular", probability=1.0),),
                            seed=0, enabled=False)
        for _ in range(10):
            assert inj.draw("thermal") is None
        assert inj.events == ()

    def test_max_fires_bounds_injections(self):
        inj = FaultInjector(
            (FaultSpec("singular", probability=1.0, max_fires=2),), seed=0)
        hits = [inj.draw("thermal") for _ in range(10)]
        assert sum(s is not None for s in hits) == 2
        assert [s is not None for s in hits[:2]] == [True, True]

    def test_sites_independent_streams(self):
        """Traffic at one site does not shift another site's stream."""
        a = FaultInjector((FaultSpec("singular", 0.5),
                           FaultSpec("nan_power", 0.5)), seed=11)
        b = FaultInjector((FaultSpec("singular", 0.5),
                           FaultSpec("nan_power", 0.5)), seed=11)
        seq_a = [a.draw("thermal") is not None for _ in range(20)]
        # b interleaves power-site draws; thermal decisions must match.
        seq_b = []
        for _ in range(20):
            b.draw("power")
            seq_b.append(b.draw("thermal") is not None)
        assert seq_a == seq_b

    def test_zero_probability_never_fires(self):
        inj = self.make(prob=0.0)
        assert all(inj.draw("thermal") is None for _ in range(50))


class TestFaultHelpers:
    def test_corrupt_nan_and_inf(self):
        maps = {"die0": np.ones((3, 3)), "die1": np.ones((3, 3))}
        bad = corrupt_power_maps(maps, "nan_power", random.Random(0))
        assert sum(np.isnan(v).sum() for v in bad.values()) == 1
        bad = corrupt_power_maps(maps, "inf_power", random.Random(0))
        assert sum(np.isinf(v).sum() for v in bad.values()) == 1
        # Originals untouched.
        assert all(np.isfinite(v).all() for v in maps.values())

    def test_corrupt_rejects_other_kinds(self):
        with pytest.raises(ConfigurationError):
            corrupt_power_maps({}, "singular", random.Random(0))

    def test_drop_vfs_keeps_lowest(self):
        freqs = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
        for seed in range(10):
            kept = drop_vfs_steps(freqs, random.Random(seed))
            assert kept[0] == 1.0
            assert set(kept) <= set(freqs)

    def test_drop_vfs_deterministic(self):
        freqs = tuple(float(f) for f in range(1, 9))
        a = drop_vfs_steps(freqs, random.Random(5))
        b = drop_vfs_steps(freqs, random.Random(5))
        assert a == b

    def test_drop_vfs_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            drop_vfs_steps((), random.Random(0))

    def test_floating_island_is_singular(self, lp_water_4):
        island = make_floating_island(lp_water_4.network)
        with pytest.raises(SingularNetworkError):
            island.solve({})


# -- FaultyThermalModel ------------------------------------------------------

class TestFaultyThermalModel:
    def wrap(self, model, *specs, seed=0):
        return FaultyThermalModel(model, FaultInjector(specs, seed=seed))

    def test_clean_delegates(self, lp_water_4):
        faulty = self.wrap(lp_water_4)
        f = 1.2e9
        assert faulty.max_temperature_c(f) == \
            lp_water_4.max_temperature_c(f)
        assert faulty.stack is lp_water_4.stack
        assert faulty.die_names == lp_water_4.die_names

    def test_singular_fault_raises(self, lp_water_4):
        faulty = self.wrap(lp_water_4, FaultSpec("singular"))
        with pytest.raises(SingularNetworkError):
            faulty.max_temperature_c(1.2e9)

    def test_timeout_fault_is_transient(self, lp_water_4):
        faulty = self.wrap(lp_water_4, FaultSpec("timeout"))
        with pytest.raises(TransientSolverError):
            faulty.max_temperature_c(1.2e9)

    def test_nan_power_trips_guard(self, lp_water_4):
        faulty = self.wrap(lp_water_4, FaultSpec("nan_power"))
        with pytest.raises(ThermalModelError, match="non-finite"):
            faulty.max_temperature_c(1.2e9)

    def test_transient_then_clean(self, lp_water_4):
        """max_fires=1 models a fault that succeeds on retry."""
        faulty = self.wrap(lp_water_4, FaultSpec("timeout", max_fires=1))
        with pytest.raises(TransientSolverError):
            faulty.max_temperature_c(1.2e9)
        assert faulty.max_temperature_c(1.2e9) == \
            lp_water_4.max_temperature_c(1.2e9)


# -- retry -------------------------------------------------------------------

class TestClassify:
    @pytest.mark.parametrize("exc,kind", [
        (TransientSolverError("x"), "retry"),
        (ConfigurationError("x"), "fatal"),
        (VFSRangeError("x"), "fatal"),
        (CalibrationError("x"), "fatal"),
        (ValueError("x"), "fatal"),
        (InfeasibleError("x"), "infeasible"),
        (SingularNetworkError("x"), "degrade"),
        (ThermalModelError("x"), "degrade"),
        (SimulationError("x"), "degrade"),
        (ReproError("x"), "degrade"),
    ])
    def test_table(self, exc, kind):
        assert classify_error(exc) == kind


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)

    def test_schedule_deterministic(self):
        p = RetryPolicy(max_attempts=5, seed=42)
        assert p.delays_s() == p.delays_s()
        assert len(p.delays_s()) == 4

    def test_schedule_grows_and_caps(self):
        p = RetryPolicy(max_attempts=6, base_delay_s=1.0,
                        backoff_factor=3.0, jitter_fraction=0.0,
                        max_delay_s=10.0)
        assert p.delays_s() == (1.0, 3.0, 9.0, 10.0, 10.0)

    def test_jitter_within_band(self):
        p = RetryPolicy(max_attempts=10, base_delay_s=1.0,
                        backoff_factor=1.0, jitter_fraction=0.1)
        assert all(0.9 <= d <= 1.1 for d in p.delays_s())

    def test_seed_changes_jitter(self):
        a = RetryPolicy(max_attempts=4, seed=1).delays_s()
        b = RetryPolicy(max_attempts=4, seed=2).delays_s()
        assert a != b


class TestWithRetry:
    def test_success_first_try(self):
        out = with_retry(lambda: 42, sleep=lambda s: None)
        assert (out.value, out.attempts, out.errors) == (42, 1, ())

    def test_transient_retried_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientSolverError("blip")
            return "ok"

        slept = []
        out = with_retry(flaky, policy=RetryPolicy(max_attempts=3),
                         sleep=slept.append)
        assert out.value == "ok"
        assert out.attempts == 3
        assert len(out.errors) == 2
        assert slept == list(out.delays_s)

    def test_budget_exhausted_reraises(self):
        def always():
            raise TransientSolverError("down")
        with pytest.raises(TransientSolverError):
            with_retry(always, policy=RetryPolicy(max_attempts=2),
                       sleep=lambda s: None)

    def test_fatal_not_retried(self):
        calls = []

        def bad():
            calls.append(1)
            raise ConfigurationError("typo")

        with pytest.raises(ConfigurationError):
            with_retry(bad, policy=RetryPolicy(max_attempts=5),
                       sleep=lambda s: None)
        assert len(calls) == 1

    def test_degradable_not_retried(self):
        calls = []

        def bad():
            calls.append(1)
            raise SingularNetworkError("island")

        with pytest.raises(SingularNetworkError):
            with_retry(bad, policy=RetryPolicy(max_attempts=5),
                       sleep=lambda s: None)
        assert len(calls) == 1


# -- degradation ladder ------------------------------------------------------

class TestDegradationLadder:
    def test_needs_rungs(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            DegradationLadder((("a", lambda: 1), ("a", lambda: 2)))

    def test_first_rung_wins_clean(self):
        ladder = DegradationLadder((("hi", lambda: 1), ("lo", lambda: 2)))
        out = ladder.run(sleep=lambda s: None)
        assert (out.value, out.rung, out.degraded) == (1, "hi", False)
        assert out.rung_index == 0

    def test_falls_to_second_rung_with_warning(self):
        def broken():
            raise SingularNetworkError("island")
        ladder = DegradationLadder((("hi", broken), ("lo", lambda: 2)))
        with pytest.warns(DegradedResultWarning):
            out = ladder.run(sleep=lambda s: None)
        assert (out.value, out.rung, out.degraded) == (2, "lo", True)
        assert out.rung_index == 1
        assert any("SingularNetworkError" in e for e in out.errors)

    def test_allow_degraded_false_propagates(self):
        def broken():
            raise SingularNetworkError("island")
        ladder = DegradationLadder((("hi", broken), ("lo", lambda: 2)))
        with pytest.raises(SingularNetworkError) as exc_info:
            ladder.run(sleep=lambda s: None, allow_degraded=False)
        assert exc_info.value._ladder_rungs == ("hi",)

    def test_fatal_skips_ladder(self):
        calls = []

        def broken():
            raise ConfigurationError("typo")

        def lo():
            calls.append(1)
            return 2

        ladder = DegradationLadder((("hi", broken), ("lo", lo)))
        with pytest.raises(ConfigurationError):
            ladder.run(sleep=lambda s: None)
        assert calls == []

    def test_last_rung_failure_propagates(self):
        def broken():
            raise SingularNetworkError("island")
        ladder = DegradationLadder((("only", broken),))
        with pytest.raises(SingularNetworkError):
            ladder.run(sleep=lambda s: None)

    def test_retry_inside_rung(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransientSolverError("blip")
            return "ok"

        ladder = DegradationLadder((("hi", flaky),))
        out = ladder.run(retry_policy=RetryPolicy(max_attempts=3),
                         sleep=lambda s: None)
        assert out.value == "ok"
        assert out.attempts == 2
        assert not out.degraded


# -- analytic thermal rung ---------------------------------------------------

class TestAnalyticStackModel:
    def make(self, n=2, cooling="water", chip="low-power-cmp",
             params=None):
        return AnalyticStackModel(
            StackConfig(chip=get_chip(chip), n_chips=n),
            get_cooling(cooling), params)

    def test_monotone_in_frequency(self, fast_params):
        m = self.make(params=fast_params)
        temps = [m.max_temperature_c(f)
                 for f in (1.0e9, 1.4e9, 1.8e9, 2.0e9)]
        assert temps == sorted(temps)
        assert all(t > fast_params.ambient_c for t in temps)

    def test_taller_stack_hotter(self, fast_params):
        f = 1.4e9
        t2 = self.make(n=2, params=fast_params).max_temperature_c(f)
        t6 = self.make(n=6, params=fast_params).max_temperature_c(f)
        assert t6 > t2

    def test_water_cooler_than_air(self, fast_params):
        f = 1.4e9
        tw = self.make(cooling="water",
                       params=fast_params).max_temperature_c(f)
        ta = self.make(cooling="air",
                       params=fast_params).max_temperature_c(f)
        assert tw < ta

    def test_tracks_grid_model(self, lp_water_4, fast_params):
        """The 0-D rise stays within a modest band of the grid rise."""
        m = self.make(n=4, params=fast_params)
        f = 1.4e9
        amb = fast_params.ambient_c
        rise = m.max_temperature_c(f) - amb
        grid_rise = lp_water_4.max_temperature_c(f) - amb
        assert 0.5 * grid_rise <= rise <= 1.5 * grid_rise

    def test_works_with_max_frequency(self, fast_params):
        from repro.core.freqopt import max_frequency
        p = max_frequency(self.make(params=fast_params))
        assert p.feasible
        assert p.f_ghz > 0

    def test_interface_parity(self, fast_params):
        m = self.make(n=3, params=fast_params)
        assert m.die_names == ("die0", "die1", "die2")
        assert m.meets_threshold(1.0e9) in (True, False)


# -- thermal and performance ladders ----------------------------------------

class TestFreqPointRungs:
    def test_rung_names(self, fast_params):
        rungs = freq_point_rungs("low-power-cmp", 2, "water",
                                 params=fast_params)
        assert tuple(name for name, _ in rungs) == (
            "sparse-lu", "analytic")

    def test_singular_falls_to_analytic(self, fast_params):
        inj = FaultInjector((FaultSpec("singular"),), seed=0)
        ladder = DegradationLadder(freq_point_rungs(
            "low-power-cmp", 2, "water", params=fast_params,
            injector=inj))
        with pytest.warns(DegradedResultWarning):
            out = ladder.run(sleep=lambda s: None)
        assert out.rung == "analytic"
        assert out.degraded
        assert out.value.feasible

    def test_drop_vfs_still_answers(self, fast_params):
        inj = FaultInjector((FaultSpec("drop_vfs", max_fires=1),), seed=0)
        ladder = DegradationLadder(freq_point_rungs(
            "low-power-cmp", 2, "water", params=fast_params,
            injector=inj))
        out = ladder.run(sleep=lambda s: None)
        clean = DegradationLadder(freq_point_rungs(
            "low-power-cmp", 2, "water",
            params=fast_params)).run(sleep=lambda s: None)
        # Sub-ladder answer is drawn from the same VFS steps, so it can
        # only be at or below the clean maximum.
        assert out.value.feasible
        assert out.value.f_ghz <= clean.value.f_ghz + 1e-9
        assert out.rung == "sparse-lu"


class TestPerfLadder:
    def config(self, n=2):
        from repro.perfsim.system import config_for_stack
        return config_for_stack(get_chip("low-power-cmp"), n)

    def test_flit_noc_close_to_analytic(self):
        from repro.perfsim.noc.topology import MeshTopology
        cfg = self.config()
        topo = MeshTopology(cfg.mesh_width, cfg.mesh_height, cfg.n_chips)
        n2 = noc_cycles_flitlevel(topo, cfg.router, legs=2)
        n3 = noc_cycles_flitlevel(topo, cfg.router, legs=3)
        assert 0 < n2 < n3

    def test_bad_legs_rejected(self):
        from repro.perfsim.noc.topology import MeshTopology
        cfg = self.config()
        topo = MeshTopology(cfg.mesh_width, cfg.mesh_height, cfg.n_chips)
        with pytest.raises(SimulationError):
            noc_cycles_flitlevel(topo, cfg.router, legs=4)

    def test_noc_stall_falls_to_analytic(self):
        inj = FaultInjector((FaultSpec("noc_stall"),), seed=0)
        ladder = DegradationLadder(perf_model_rungs(
            self.config(), injector=inj))
        with pytest.warns(DegradedResultWarning):
            out = ladder.run(sleep=lambda s: None)
        assert out.rung == "analytic"
        assert out.degraded

    def test_clean_uses_flit_noc(self):
        out = DegradationLadder(perf_model_rungs(
            self.config())).run(sleep=lambda s: None)
        assert out.rung == "flit-noc"
        assert not out.degraded


class TestResilienceOptions:
    def test_defaults(self):
        opts = ResilienceOptions()
        assert not opts.allow_degraded
        assert opts.injector is None
