"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.perfsim.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fifo(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(1.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [1.5]

    def test_schedule_from_callback(self):
        q = EventQueue()
        fired = []
        def first():
            fired.append(q.now)
            q.schedule(1.0, lambda: fired.append(q.now))
        q.schedule(1.0, first)
        q.run()
        assert fired == [1.0, 2.0]

    def test_schedule_at_absolute(self):
        q = EventQueue()
        seen = []
        q.schedule_at(4.0, lambda: seen.append(q.now))
        q.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)

    def test_until_horizon(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(5.0, lambda: fired.append(5))
        t = q.run(until_s=2.0)
        assert fired == [1]
        assert t == 2.0
        assert q.pending == 1

    def test_event_budget_guard(self):
        q = EventQueue()
        def loop():
            q.schedule(0.0, loop)
        q.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="budget"):
            q.run(max_events=100)

    def test_step_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_processed_counter(self):
        q = EventQueue()
        for _ in range(3):
            q.schedule(1.0, lambda: None)
        q.run()
        assert q.processed == 3
