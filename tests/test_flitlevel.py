"""Tests: the flit-level reference validates the packet-level model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.perfsim.noc import DEFAULT_ROUTER, RouterParams
from repro.perfsim.noc.flitlevel import FlitLink, zero_load_flit_latency


class TestZeroLoad:
    @pytest.mark.parametrize("flits", [1, 2, 5, 9])
    def test_matches_packet_formula(self, flits):
        assert zero_load_flit_latency(flits) == (
            DEFAULT_ROUTER.zero_load_cycles(1, flits))

    def test_deeper_pipeline(self):
        params = RouterParams(pipeline_stages=5)
        assert zero_load_flit_latency(5, params) == (
            params.zero_load_cycles(1, 5))


class TestContention:
    def test_same_vc_serialization_matches_occupancy_rule(self):
        """Trailing packet's arrival equals the packet model's
        occupancy-based prediction."""
        link = FlitLink()
        link.inject(vc=0, flits=5, cycle=0)
        b = link.inject(vc=0, flits=5, cycle=0)
        link.run_until_drained()
        # Packet model: link free at t=5, arrival 5 + 3 + 4 = 12.
        assert link.latency_of(b) == 12

    def test_vcs_share_one_physical_link(self):
        """On a single link, a second VC does not add bandwidth."""
        link = FlitLink()
        link.inject(vc=0, flits=5, cycle=0)
        b = link.inject(vc=1, flits=5, cycle=0)
        link.run_until_drained()
        assert link.latency_of(b) >= 12

    def test_idle_gap_no_interference(self):
        link = FlitLink()
        link.inject(vc=0, flits=5, cycle=0)
        b = link.inject(vc=0, flits=5, cycle=50)
        link.run_until_drained()
        assert link.latency_of(b) == DEFAULT_ROUTER.zero_load_cycles(1, 5)

    def test_credit_limit_throttles_long_packet(self):
        """A packet longer than the VC buffer stalls on credits: the
        5-flit buffer forces the credit round trip to pace the flits."""
        long_flits = 14
        lat = zero_load_flit_latency(long_flits)
        unthrottled = DEFAULT_ROUTER.zero_load_cycles(1, long_flits)
        assert lat >= unthrottled

    def test_round_robin_fairness(self):
        """Three VCs injecting together all complete within a bounded
        spread (no starvation)."""
        link = FlitLink()
        pids = [link.inject(vc=v, flits=5, cycle=0) for v in range(3)]
        link.run_until_drained()
        lats = [link.latency_of(p) for p in pids]
        assert max(lats) - min(lats) <= 2 * 5 + 2


class TestValidation:
    def test_invalid_vc(self):
        with pytest.raises(SimulationError):
            FlitLink().inject(vc=9, flits=1, cycle=0)

    def test_invalid_flits(self):
        with pytest.raises(SimulationError):
            FlitLink().inject(vc=0, flits=0, cycle=0)

    def test_unknown_packet(self):
        link = FlitLink()
        with pytest.raises(SimulationError):
            link.latency_of(42)

    def test_drain_guard(self):
        link = FlitLink()
        link.inject(vc=0, flits=5, cycle=0)
        with pytest.raises(SimulationError):
            link.run_until_drained(max_cycles=2)


class TestDeliveryIndex:
    def test_queued_but_undelivered_raises(self):
        """A pid that exists but has not crossed yet is not delivered."""
        link = FlitLink()
        pid = link.inject(vc=0, flits=5, cycle=0)
        with pytest.raises(SimulationError, match="not delivered"):
            link.latency_of(pid)

    def test_index_agrees_with_delivered_list(self):
        """The O(1) pid index answers exactly like a delivered-list scan."""
        link = FlitLink()
        pids = [link.inject(vc=v % link.params.num_vcs, flits=3, cycle=0)
                for v in range(8)]
        link.run_until_drained()
        by_scan = {p.pid: p.done_cycle - p.inject_cycle
                   for p in link.delivered}
        assert {pid: link.latency_of(pid) for pid in pids} == by_scan
