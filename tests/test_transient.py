"""Tests for the transient thermal solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal import TransientSolver
from repro.units import ghz


@pytest.fixture(scope="module")
def solver(lp_water_4):
    return TransientSolver(lp_water_4.network, dt_s=0.05)


@pytest.fixture(scope="module")
def power(lp_water_4):
    return lp_water_4.power_maps(ghz(2.0))


class TestTransientSolver:
    def test_invalid_dt_rejected(self, lp_water_4):
        with pytest.raises(ThermalModelError):
            TransientSolver(lp_water_4.network, dt_s=0.0)

    def test_initial_state_is_ambient(self, solver):
        t0 = solver.initial_state()
        assert t0.shape == (solver.network.num_nodes,)
        np.testing.assert_allclose(t0, 25.0)

    def test_zero_power_stays_at_ambient(self, solver):
        trace = solver.integrate({}, 20)
        np.testing.assert_allclose(trace.max_temp_c, 25.0, atol=1e-9)

    def test_heating_is_monotone_under_constant_power(self, solver, power):
        trace = solver.integrate(power, 50)
        assert np.all(np.diff(trace.max_temp_c) > -1e-9)

    def test_converges_to_steady_state(self, lp_water_4, solver, power):
        settled, steps = solver.settle(power, tol_c=1e-5)
        steady = lp_water_4.network.solve(power)
        sv = np.concatenate([steady.layer(la.name).ravel()
                             for la in lp_water_4.network.layers])
        assert float(np.abs(settled - sv).max()) < 0.05
        assert steps > 1

    def test_never_overshoots_steady_state(self, lp_water_4, solver,
                                           power):
        steady_max = lp_water_4.max_temperature_c(ghz(2.0))
        trace = solver.integrate(power, 400)
        assert trace.peak_c <= steady_max + 0.1

    def test_cooling_after_power_off(self, solver, power):
        hot, _ = solver.settle(power, tol_c=1e-3)
        trace_down = solver.integrate({}, 100,
                                      t0_c=float(hot.max()))
        assert trace_down.max_temp_c[-1] < trace_down.max_temp_c[0]

    def test_time_varying_schedule(self, solver, power):
        """A duty-cycled workload stays cooler than continuous power."""
        def duty(step, _t):
            return power if step % 2 == 0 else {}
        continuous = solver.integrate(power, 100)
        cycled = solver.integrate(duty, 100)
        assert cycled.peak_c < continuous.peak_c

    def test_step_shape_validated(self, solver):
        with pytest.raises(ThermalModelError):
            solver.step(np.zeros(3), {})

    def test_trace_time_above(self):
        from repro.thermal.transient import TransientTrace
        trace = TransientTrace(
            times_s=np.array([0.0, 1.0, 2.0, 3.0]),
            max_temp_c=np.array([25.0, 85.0, 85.0, 70.0]))
        assert trace.time_above(80.0) == pytest.approx(2.0)
        assert trace.peak_c == 85.0

    def test_result_from_state_layers(self, solver, lp_water_4):
        state = solver.initial_state(42.0)
        res = solver.result_from_state(state)
        assert res.max_of("die0") == pytest.approx(42.0)
        assert set(res.layer_names) == {la.name for la in
                                        lp_water_4.network.layers}

    def test_time_constant_positive(self, solver):
        tau = solver.thermal_time_constant_s()
        assert 0.1 < tau < 1000.0

    def test_smaller_dt_converges_to_same_steady(self, lp_water_4, power):
        fine = TransientSolver(lp_water_4.network, dt_s=0.01)
        coarse = TransientSolver(lp_water_4.network, dt_s=0.2)
        t_fine, _ = fine.settle(power, tol_c=1e-5)
        t_coarse, _ = coarse.settle(power, tol_c=1e-5)
        assert float(np.abs(t_fine - t_coarse).max()) < 0.5

    def test_integrate_rejects_zero_steps(self, solver, power):
        with pytest.raises(ThermalModelError):
            solver.integrate(power, 0)

    def test_keep_fields(self, solver, power):
        trace = solver.integrate(power, 5, keep_fields=True)
        assert trace.fields is not None
        assert trace.fields.shape == (6, solver.network.num_nodes)
