"""Tests for the full-system simulator and the analytic tier."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.perfsim import (
    AnalyticModel,
    FullSystemSimulator,
    SystemConfig,
    get_profile,
    simulate_npb,
)
from repro.perfsim.system import CmpSystem, config_for_stack
from repro.power.processors import get_chip
from repro.units import ghz

FAST = 20_000   # instructions per thread for quick runs


@pytest.fixture(scope="module")
def cfg2():
    return SystemConfig(n_chips=2)


class TestSystemAssembly:
    def test_total_cores(self):
        assert SystemConfig(n_chips=6).total_cores == 24
        assert SystemConfig(n_chips=8).total_cores == 32

    def test_core_nodes_bottom_row(self, cfg2):
        sys = CmpSystem(cfg2)
        assert len(sys.core_nodes) == 8
        assert all(n.y == 0 for n in sys.core_nodes)

    def test_bank_nodes_disjoint_from_cores(self, cfg2):
        sys = CmpSystem(cfg2)
        assert not set(sys.core_nodes) & set(sys.bank_nodes)
        assert len(sys.bank_nodes) == 24   # 2 chips x 12 banks

    def test_mem_nodes_on_bottom_tier(self, cfg2):
        sys = CmpSystem(cfg2)
        assert all(n.chip == 0 for n in sys.mem_nodes)
        assert len(sys.mem_nodes) == 4

    def test_home_interleaving_covers_banks(self, cfg2):
        sys = CmpSystem(cfg2)
        homes = {sys.home_for(line * 64) for line in range(100)}
        assert len(homes) == len(sys.bank_nodes)

    def test_config_for_stack(self):
        chip = get_chip("low-power-cmp")
        cfg = config_for_stack(chip, 6)
        assert cfg.n_chips == 6
        assert cfg.cores_per_chip == 4

    def test_too_many_cores_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SystemConfig(n_chips=1, cores_per_chip=20)


class TestFullSystemSimulator:
    def test_completes_and_reports(self, cfg2):
        r = simulate_npb("mg", cfg2, ghz(2.0), seed=1,
                         instructions_per_thread=FAST)
        assert r.exec_time_s > 0
        # Threads execute whole barrier episodes, so the retired count
        # approximates (not exactly equals) the requested budget.
        assert r.instructions > 0.5 * 8 * FAST
        assert r.noc_packets > 0
        assert r.dram_requests > 0
        assert r.barriers >= 1

    def test_deterministic_given_seed(self, cfg2):
        a = simulate_npb("cg", cfg2, ghz(2.0), seed=9,
                         instructions_per_thread=FAST)
        b = simulate_npb("cg", cfg2, ghz(2.0), seed=9,
                         instructions_per_thread=FAST)
        assert a.exec_time_s == b.exec_time_s
        assert a.noc_packets == b.noc_packets

    def test_seed_changes_result(self, cfg2):
        a = simulate_npb("cg", cfg2, ghz(2.0), seed=1,
                         instructions_per_thread=FAST)
        b = simulate_npb("cg", cfg2, ghz(2.0), seed=2,
                         instructions_per_thread=FAST)
        assert a.exec_time_s != b.exec_time_s

    def test_higher_frequency_faster(self, cfg2):
        slow = simulate_npb("ft", cfg2, ghz(1.2), seed=3,
                            instructions_per_thread=FAST)
        fast = simulate_npb("ft", cfg2, ghz(2.0), seed=3,
                            instructions_per_thread=FAST)
        assert fast.exec_time_s < slow.exec_time_s

    def test_frequency_scaling_sublinear_for_memory_bound(self, cfg2):
        f1, f2 = ghz(1.2), ghz(2.4)
        r1 = simulate_npb("is", cfg2, f1, seed=4,
                          instructions_per_thread=FAST)
        r2 = simulate_npb("is", cfg2, f2, seed=4,
                          instructions_per_thread=FAST)
        speedup = r1.exec_time_s / r2.exec_time_s
        assert 1.0 < speedup < 2.0   # < ideal 2.0: DRAM time is fixed

    def test_ep_scaling_near_ideal(self, cfg2):
        r1 = simulate_npb("ep", cfg2, ghz(1.2), seed=4,
                          instructions_per_thread=FAST)
        r2 = simulate_npb("ep", cfg2, ghz(2.4), seed=4,
                          instructions_per_thread=FAST)
        speedup = r1.exec_time_s / r2.exec_time_s
        assert speedup > 1.85

    def test_memory_bound_fraction_ordering(self, cfg2):
        ep = simulate_npb("ep", cfg2, ghz(2.0), seed=5,
                          instructions_per_thread=FAST)
        cg = simulate_npb("cg", cfg2, ghz(2.0), seed=5,
                          instructions_per_thread=FAST)
        assert cg.memory_bound_fraction > ep.memory_bound_fraction

    def test_thread_count_override(self, cfg2):
        r = FullSystemSimulator(cfg2, get_profile("ep"), ghz(2.0),
                                threads=4, seed=1,
                                instructions_per_thread=FAST).run()
        assert r.instructions >= 4 * FAST

    def test_invalid_thread_count(self, cfg2):
        with pytest.raises(SimulationError):
            FullSystemSimulator(cfg2, get_profile("ep"), ghz(2.0),
                                threads=0)
        with pytest.raises(SimulationError):
            FullSystemSimulator(cfg2, get_profile("ep"), ghz(2.0),
                                threads=100)


class TestAnalyticModel:
    def test_relative_time_identity(self, cfg2):
        m = AnalyticModel(cfg2)
        assert m.relative_time(get_profile("cg"), ghz(2.0), ghz(2.0)) == 1.0

    def test_higher_frequency_never_slower(self, cfg2):
        m = AnalyticModel(cfg2)
        for name in ("bt", "cg", "ep", "is", "mg"):
            rel = m.relative_time(get_profile(name), ghz(2.0), ghz(1.2))
            assert rel < 1.0

    def test_speedup_bounded_by_frequency_ratio(self, cfg2):
        m = AnalyticModel(cfg2)
        for name in ("bt", "cg", "ep", "is", "mg", "sp", "ua", "lu", "ft"):
            rel = m.relative_time(get_profile(name), ghz(2.4), ghz(1.2))
            assert rel >= 1.2 / 2.4 - 1e-9

    def test_ep_compresses_least(self, cfg2):
        m = AnalyticModel(cfg2)
        rels = {name: m.relative_time(get_profile(name), ghz(2.4), ghz(1.2))
                for name in ("ep", "cg", "is")}
        assert rels["ep"] < rels["cg"]
        assert rels["ep"] < rels["is"]

    def test_breakdown_beta_in_unit_interval(self, cfg2):
        m = AnalyticModel(cfg2)
        for name in ("ep", "cg"):
            b = m.breakdown(get_profile(name), ghz(2.0))
            assert 0.0 <= b.memory_bound_fraction < 1.0

    def test_imbalance_factor_grows_with_threads(self):
        cfg = SystemConfig(n_chips=8)
        few = AnalyticModel(cfg, threads=2)
        many = AnalyticModel(cfg, threads=32)
        p = get_profile("ua")
        assert (many.breakdown(p, ghz(2.0)).imbalance_factor
                > few.breakdown(p, ghz(2.0)).imbalance_factor)

    def test_invalid_frequency_rejected(self, cfg2):
        with pytest.raises(SimulationError):
            AnalyticModel(cfg2).breakdown(get_profile("cg"), 0.0)

    def test_agrees_with_event_tier_on_scaling(self, cfg2):
        """The two tiers must agree on T(f1)/T(f2) within ~7%."""
        m = AnalyticModel(cfg2)
        for name in ("ep", "cg", "mg"):
            rel_a = m.relative_time(get_profile(name), ghz(2.0), ghz(1.2))
            e_hi = simulate_npb(name, cfg2, ghz(2.0), seed=6,
                                instructions_per_thread=FAST)
            e_lo = simulate_npb(name, cfg2, ghz(1.2), seed=6,
                                instructions_per_thread=FAST)
            rel_e = e_hi.exec_time_s / e_lo.exec_time_s
            assert rel_a == pytest.approx(rel_e, abs=0.07)
