"""Instrumentation wired through the pipeline: cache, CLI, campaign."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs import get_registry, get_tracer, validate_manifest
from repro.thermal.hotspot import ModelCache, model_cache, model_for
from repro.thermal.package import DEFAULT_PACKAGE


def counter_value(name: str) -> int:
    return get_registry().counter(name).value


# -- bounded model cache -----------------------------------------------------

class TestModelCache:
    def test_lru_eviction_order_and_bound(self):
        cache = ModelCache(capacity=2)
        built = []

        def factory(tag):
            def build():
                built.append(tag)
                return tag
            return build

        cache.get_or_build(("a",), factory("a"))
        cache.get_or_build(("b",), factory("b"))
        cache.get_or_build(("a",), factory("a2"))   # hit; refreshes "a"
        cache.get_or_build(("c",), factory("c"))    # evicts LRU "b"
        cache.get_or_build(("b",), factory("b2"))   # rebuild
        assert built == ["a", "b", "c", "b2"]
        info = cache.cache_info()
        assert info.hits == 1
        assert info.misses == 4
        assert info.evictions == 2      # "b" then "a"
        assert info.currsize == 2 == len(cache)

    def test_set_capacity_evicts_down(self):
        cache = ModelCache(capacity=4)
        for k in range(4):
            cache.get_or_build((k,), lambda k=k: k)
        cache.set_capacity(1)
        assert len(cache) == 1
        assert cache.cache_info().evictions == 3
        # the survivor is the most recently used
        assert cache.get_or_build((3,), lambda: "rebuilt") == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ModelCache(capacity=0)
        with pytest.raises(ConfigurationError):
            ModelCache(capacity=2).set_capacity(-1)

    def test_clear_keeps_statistics(self):
        cache = ModelCache(capacity=2)
        cache.get_or_build(("a",), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.cache_info().misses == 1

    def test_model_for_exports_hit_miss_counters(self):
        # a unique params object gives an unpolluted cache key
        params = replace(DEFAULT_PACKAGE, die_grid=7, package_grid=4)
        hits0 = counter_value("thermal.model_cache_hit")
        miss0 = counter_value("thermal.model_cache_miss")
        a = model_for("low-power-cmp", 1, "water", params=params)
        b = model_for("low-power-cmp", 1, "water", params=params)
        assert a is b
        assert counter_value("thermal.model_cache_miss") == miss0 + 1
        assert counter_value("thermal.model_cache_hit") == hits0 + 1
        assert model_cache().capacity >= 1


# -- solver / resilience counters -------------------------------------------

class TestPipelineCounters:
    def test_solver_counters_tick(self, fast_params):
        from repro.cooling.options import get_cooling
        from repro.power.processors import get_chip
        from repro.stack.chipstack import StackConfig
        from repro.thermal import response_cache
        from repro.thermal.hotspot import ThermalModel
        response_cache().clear()
        fact0 = counter_value("thermal.splu_factorizations")
        solve0 = counter_value("thermal.solves")
        model = ThermalModel(
            StackConfig(chip=get_chip("low-power-cmp"), n_chips=1),
            get_cooling("water"), fast_params)
        model.max_temperature_c(2.0e9)
        # The superposition kernel answers this by building the
        # geometry's response operator: one factorization, one
        # multi-RHS solve counting each unit-power column as a solve.
        assert counter_value("thermal.splu_factorizations") == fact0 + 1
        assert counter_value("thermal.solves") > solve0
        hist = get_registry().histogram("thermal.solve_seconds")
        assert hist.count >= 1

    def test_retry_counter_ticks(self):
        from repro.errors import TransientSolverError
        from repro.resilience import RetryPolicy, with_retry
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransientSolverError("once")
            return "ok"

        r0 = counter_value("resilience.retries")
        out = with_retry(flaky, policy=RetryPolicy(max_attempts=3,
                                                   base_delay_s=0.0,
                                                   jitter_fraction=0.0),
                         sleep=lambda s: None)
        assert out.value == "ok"
        assert counter_value("resilience.retries") == r0 + 1

    def test_noc_flit_counter_ticks(self):
        from repro.perfsim.noc.flitlevel import zero_load_flit_latency
        f0 = counter_value("noc.flits_routed")
        zero_load_flit_latency(5)
        assert counter_value("noc.flits_routed") == f0 + 5


# -- CLI flags ---------------------------------------------------------------

class TestCliObservability:
    FREQ = ["freq", "--chip", "low-power-cmp", "--chips", "1",
            "--cooling", "water"]

    def test_flags_after_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main(self.FREQ + ["--trace-out", str(trace),
                               "--metrics-out", str(metrics)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "cli.freq" in names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["thermal.solves"] >= 1
        # the CLI must restore the disabled state afterwards
        assert not get_tracer().enabled

    def test_flags_before_subcommand(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        rc = main(["--trace-out", str(trace)] + self.FREQ)
        assert rc == 0
        lines = [json.loads(line)
                 for line in trace.read_text().strip().splitlines()]
        assert any(r["name"] == "cli.freq" for r in lines)

    def test_jsonl_suffix_selects_jsonl(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        main(self.FREQ + ["--trace-out", str(trace)])
        first = trace.read_text().splitlines()[0]
        assert "span_id" in json.loads(first)

    def test_verbose_streams_structured_stderr(self, capsys):
        rc = main(self.FREQ + ["-v"])
        assert rc == 0
        # -v alone must not enable the tracer
        assert not get_tracer().enabled

    def test_inert_without_flags(self, tmp_path, capsys):
        spans_before = len(get_tracer().spans)
        rc = main(self.FREQ)
        assert rc == 0
        assert len(get_tracer().spans) == spans_before
        assert not get_tracer().enabled


# -- campaign manifests ------------------------------------------------------

class TestCampaignManifest:
    def _run(self, tmp_path, fast_params):
        from repro.core.campaign import CampaignRunner, frequency_grid
        from repro.resilience import ResilienceOptions, RetryPolicy
        pts = frequency_grid("low-power-cmp", (1, 2), ("water",))
        runner = CampaignRunner(
            pts,
            resilience=ResilienceOptions(
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                         jitter_fraction=0.0, seed=3),
                sleep=lambda s: None),
            checkpoint_path=tmp_path / "c.json", params=fast_params)
        return runner, runner.run()

    def test_manifest_written_and_valid(self, tmp_path, fast_params):
        runner, result = self._run(tmp_path, fast_params)
        manifest_path = runner.manifest_path()
        assert manifest_path is not None and manifest_path.exists()
        doc = json.loads(manifest_path.read_text())
        validate_manifest(doc)
        assert doc["name"] == "campaign"
        assert doc["seed"] == 3
        assert doc["config_hash"] == runner.config_hash
        assert doc["extra"]["point_totals"]["ok"] == 2
        assert doc["wall_time_s"] > 0
        assert "counters" in doc["metrics"]

    def test_manifest_embedded_in_checkpoint(self, tmp_path, fast_params):
        runner, result = self._run(tmp_path, fast_params)
        ck = json.loads((tmp_path / "c.json").read_text())
        validate_manifest(ck["manifest"])
        assert ck["manifest"]["config_hash"] == runner.config_hash
        assert result.manifest is not None
        assert result.manifest["config_hash"] == runner.config_hash

    def test_point_counters_sum_to_totals(self, tmp_path, fast_params):
        ok0 = counter_value("campaign.points_ok")
        fail0 = counter_value("campaign.points_failed")
        _, result = self._run(tmp_path, fast_params)
        s = result.summary()
        assert counter_value("campaign.points_ok") - ok0 == s["ok"] == 2
        assert counter_value("campaign.points_failed") - fail0 \
            == s["failed"] == 0

    def test_ledger_entries_carry_config_hash(self, tmp_path, fast_params):
        from repro.core.campaign import CampaignRunner, frequency_grid
        from repro.resilience import (
            FaultInjector,
            FaultSpec,
            ResilienceOptions,
            RetryPolicy,
        )
        pts = frequency_grid("low-power-cmp", (1,), ("water",))
        runner = CampaignRunner(
            pts,
            resilience=ResilienceOptions(
                retry_policy=RetryPolicy(max_attempts=1),
                injector=FaultInjector([FaultSpec("singular")], seed=0),
                sleep=lambda s: None),
            checkpoint_path=tmp_path / "c.json", params=fast_params)
        result = runner.run()
        assert len(result.ledger) == 1
        assert result.ledger[0].config_hash == runner.config_hash
        # and it round-trips through the checkpoint
        ck = json.loads((tmp_path / "c.json").read_text())
        assert ck["ledger"][0]["config_hash"] == runner.config_hash

    def test_config_hash_stable_across_runs(self, tmp_path, fast_params):
        runner_a, _ = self._run(tmp_path, fast_params)
        runner_b, _ = self._run(tmp_path, fast_params)
        assert runner_a.config_hash == runner_b.config_hash
