"""Tests for the alpha-power VFS model and ladders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VFSRangeError
from repro.power.technology import TECH_22NM_HP
from repro.power.vfs import VFSCurve, VFSLadder
from repro.units import ghz


@pytest.fixture(scope="module")
def curve() -> VFSCurve:
    return VFSCurve(tech=TECH_22NM_HP, f_max_hz=ghz(3.6))


class TestVFSCurve:
    def test_anchor_at_vdd_max(self, curve: VFSCurve):
        assert curve.frequency_at(1.0) == pytest.approx(ghz(3.6))

    def test_frequency_monotone_in_voltage(self, curve: VFSCurve):
        vs = np.linspace(TECH_22NM_HP.vdd_min_v, 1.0, 30)
        fs = [curve.frequency_at(v) for v in vs]
        assert all(a < b for a, b in zip(fs, fs[1:]))

    def test_voltage_roundtrip(self, curve: VFSCurve):
        for f in (ghz(1.2), ghz(2.0), ghz(2.8), ghz(3.6)):
            v = curve.voltage_for(f)
            assert curve.frequency_at(v) == pytest.approx(f, rel=1e-6)

    def test_voltage_for_max_is_vdd_max(self, curve: VFSCurve):
        assert curve.voltage_for(ghz(3.6)) == pytest.approx(1.0)

    def test_over_max_rejected(self, curve: VFSCurve):
        with pytest.raises(VFSRangeError, match="exceeds"):
            curve.voltage_for(ghz(4.0))

    def test_below_min_rejected(self, curve: VFSCurve):
        with pytest.raises(VFSRangeError, match="below"):
            curve.voltage_for(ghz(0.1))

    def test_nonpositive_frequency_rejected(self, curve: VFSCurve):
        with pytest.raises(VFSRangeError):
            curve.voltage_for(0.0)

    def test_voltage_outside_window_rejected(self, curve: VFSCurve):
        with pytest.raises(VFSRangeError):
            curve.frequency_at(TECH_22NM_HP.vth_v)   # at threshold
        with pytest.raises(VFSRangeError):
            curve.frequency_at(1.5)

    def test_dynamic_scale_cubic_ish(self, curve: VFSCurve):
        # P_dyn ~ V^2 f: halving f reduces dynamic power by much more
        # than half because V also drops.
        s = curve.dynamic_scale(ghz(1.8))
        assert s < 0.5 * curve.dynamic_scale(ghz(3.6))

    def test_dynamic_scale_at_max_is_one(self, curve: VFSCurve):
        assert curve.dynamic_scale(ghz(3.6)) == pytest.approx(1.0)

    def test_static_scale_at_max_is_one(self, curve: VFSCurve):
        assert curve.static_scale(ghz(3.6)) == pytest.approx(1.0)

    @given(st.floats(min_value=1.3e9, max_value=3.6e9))
    @settings(max_examples=50)
    def test_scales_monotone_property(self, f: float):
        c = VFSCurve(tech=TECH_22NM_HP, f_max_hz=ghz(3.6))
        f_lo = f * 0.95
        assert c.dynamic_scale(f_lo) < c.dynamic_scale(f) + 1e-12
        assert c.static_scale(f_lo) <= c.static_scale(f) + 1e-12

    def test_alpha_is_papers_value(self):
        assert TECH_22NM_HP.alpha == 1.3


class TestVFSLadder:
    def test_low_power_ladder_11_steps(self):
        ladder = VFSLadder(ghz(1.0), ghz(2.0), ghz(0.1))
        assert ladder.num_steps == 11

    def test_high_frequency_ladder_13_steps(self):
        ladder = VFSLadder(ghz(1.2), ghz(3.6), ghz(0.2))
        assert ladder.num_steps == 13

    def test_frequencies_ascending_inclusive(self):
        ladder = VFSLadder(ghz(1.0), ghz(2.0), ghz(0.1))
        f = ladder.frequencies()
        assert f[0] == pytest.approx(ghz(1.0))
        assert f[-1] == pytest.approx(ghz(2.0))
        assert np.all(np.diff(f) > 0)

    def test_contains(self):
        ladder = VFSLadder(ghz(1.2), ghz(3.6), ghz(0.2))
        assert ladder.contains(ghz(2.4))
        assert not ladder.contains(ghz(2.5))

    def test_floor(self):
        ladder = VFSLadder(ghz(1.0), ghz(2.0), ghz(0.1))
        assert ladder.floor(ghz(1.55)) == pytest.approx(ghz(1.5))
        assert ladder.floor(ghz(2.7)) == pytest.approx(ghz(2.0))

    def test_floor_below_min_rejected(self):
        ladder = VFSLadder(ghz(1.0), ghz(2.0), ghz(0.1))
        with pytest.raises(VFSRangeError):
            ladder.floor(ghz(0.9))

    def test_non_integer_span_rejected(self):
        with pytest.raises(VFSRangeError, match="integer"):
            VFSLadder(ghz(1.0), ghz(2.05), ghz(0.1))

    def test_bad_endpoints_rejected(self):
        with pytest.raises(VFSRangeError):
            VFSLadder(ghz(2.0), ghz(1.0), ghz(0.1))

    def test_bad_step_rejected(self):
        with pytest.raises(VFSRangeError):
            VFSLadder(ghz(1.0), ghz(2.0), -ghz(0.1))
