"""Tests for the calibration-uncertainty study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.uncertainty import (
    VARIED_PARAMETERS,
    RobustnessResult,
    robustness_study,
    sample_params,
)
from repro.errors import ConfigurationError
from repro.thermal.package import DEFAULT_PACKAGE


class TestSampling:
    def test_samples_within_band(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            p = sample_params(rng)
            for name, factor in VARIED_PARAMETERS.items():
                base = getattr(DEFAULT_PACKAGE, name)
                value = getattr(p, name)
                assert base / factor - 1e-12 <= value <= base * factor + 1e-12

    def test_unvaried_fields_unchanged(self):
        rng = np.random.default_rng(1)
        p = sample_params(rng)
        assert p.sink_fin_area_m2 == DEFAULT_PACKAGE.sink_fin_area_m2
        assert p.ambient_c == DEFAULT_PACKAGE.ambient_c

    def test_reproducible(self):
        a = sample_params(np.random.default_rng(5))
        b = sample_params(np.random.default_rng(5))
        assert a == b

    def test_invalid_band_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            sample_params(rng, bands={"die_k_lateral": 0.9})

    def test_log_symmetry(self):
        """Median of log-uniform draws sits near the fitted value."""
        rng = np.random.default_rng(2)
        values = [getattr(sample_params(rng), "die_bond_r_m2kw")
                  for _ in range(400)]
        median = float(np.median(values))
        base = DEFAULT_PACKAGE.die_bond_r_m2kw
        assert median == pytest.approx(base, rel=0.15)


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        # Small but meaningful sample; deterministic.
        return robustness_study(n_draws=10, seed=3)

    def test_rates_in_unit_interval(self, result):
        for rate in (result.ordering_rate, result.water_deepest_rate,
                     result.pipe_cliff_rate,
                     result.water_beats_oil_npb_rate):
            assert 0.0 <= rate <= 1.0

    def test_core_conclusions_robust(self, result):
        """The paper's qualitative spine survives the calibration band."""
        assert result.ordering_rate >= 0.9
        assert result.water_deepest_rate >= 0.9
        assert result.water_beats_oil_npb_rate >= 0.9

    def test_cliff_is_the_fragile_anchor(self, result):
        """The pipe-fails-at-8 cliff is knife-edge by construction
        (docs/calibration.md) — it should be the least robust rate."""
        assert result.pipe_cliff_rate <= result.ordering_rate

    def test_all_conclusions_helper(self, result):
        assert result.all_conclusions_robust(threshold=0.8)

    def test_zero_draws_rejected(self):
        with pytest.raises(ConfigurationError):
            robustness_study(n_draws=0)
