"""Tests for repro.floorplan: container, library, transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FloorplanError
from repro.floorplan import (
    Block,
    Floorplan,
    Rect,
    baseline_16tile,
    floorplan_names,
    get_floorplan,
    mirror_x,
    mirror_y,
    rotate_90,
    rotate_180,
    xeon_e5_2667v4,
    xeon_phi_7290,
)
from repro.units import mm2


class TestFloorplanInvariants:
    def test_duplicate_names_rejected(self):
        with pytest.raises(FloorplanError, match="duplicate"):
            Floorplan("bad", Rect(0, 0, 1, 1), (
                Block("a", Rect(0, 0, 0.4, 0.4)),
                Block("a", Rect(0.5, 0.5, 0.4, 0.4)),
            ))

    def test_out_of_outline_rejected(self):
        with pytest.raises(FloorplanError, match="outside"):
            Floorplan("bad", Rect(0, 0, 1, 1), (
                Block("a", Rect(0.8, 0.8, 0.5, 0.5)),
            ))

    def test_overlap_rejected(self):
        with pytest.raises(FloorplanError, match="overlap"):
            Floorplan("bad", Rect(0, 0, 1, 1), (
                Block("a", Rect(0, 0, 0.6, 0.6)),
                Block("b", Rect(0.5, 0.5, 0.4, 0.4)),
            ))

    def test_touching_blocks_allowed(self):
        fp = Floorplan("ok", Rect(0, 0, 1, 1), (
            Block("a", Rect(0, 0, 0.5, 1.0)),
            Block("b", Rect(0.5, 0, 0.5, 1.0)),
        ))
        assert fp.coverage() == pytest.approx(1.0)

    def test_block_lookup(self):
        fp = baseline_16tile()
        assert fp.block("R00").kind == "router"
        with pytest.raises(FloorplanError, match="no block"):
            fp.block("XYZ")

    def test_blocks_of_kind(self):
        fp = baseline_16tile()
        cores = fp.blocks_of_kind("core")
        assert len(cores) == 8   # 4 logical cores x 2 rectangles each


class TestPowerMap:
    def test_power_conservation(self):
        fp = baseline_16tile()
        power = {name: 1.0 for name in fp.block_names}
        pm = fp.power_map(power, 16, 16)
        assert pm.sum() == pytest.approx(len(fp.block_names), rel=1e-12)

    def test_unknown_block_rejected(self):
        fp = baseline_16tile()
        with pytest.raises(FloorplanError, match="unknown"):
            fp.power_map({"nope": 1.0}, 8, 8)

    def test_negative_power_rejected(self):
        fp = baseline_16tile()
        with pytest.raises(FloorplanError, match="negative"):
            fp.power_map({"R00": -1.0}, 8, 8)

    def test_zero_power_blocks_allowed(self):
        fp = baseline_16tile()
        pm = fp.power_map({}, 8, 8)
        assert pm.sum() == 0.0

    def test_density_map_units(self):
        fp = baseline_16tile()
        pm = fp.density_map({name: 1.0 for name in fp.block_names}, 8, 8)
        total = pm.sum() * fp.die_area / 64
        assert total == pytest.approx(len(fp.block_names), rel=1e-9)

    def test_conservation_across_resolutions(self):
        fp = xeon_e5_2667v4()
        power = {b.name: 2.5 for b in fp.blocks}
        for n in (4, 9, 17):
            pm = fp.power_map(power, n, n)
            assert pm.sum() == pytest.approx(2.5 * len(fp.blocks),
                                             rel=1e-9)


class TestLibrary:
    def test_baseline_die_area_is_169mm2(self):
        fp = baseline_16tile()
        assert fp.die_area == pytest.approx(mm2(169.0))

    def test_baseline_has_four_cores_in_bottom_row(self):
        fp = baseline_16tile()
        core_blocks = fp.blocks_of_kind("core")
        # Fig. 5: all cores in the bottom tile row (y < tile height).
        tile = fp.outline.h / 4
        assert all(b.rect.y2 <= tile + 1e-12 for b in core_blocks)

    def test_baseline_has_twelve_l2_banks(self):
        fp = baseline_16tile()
        names = {b.name[:-1] for b in fp.blocks_of_kind("l2")}
        assert len(names) == 12

    def test_baseline_has_sixteen_routers(self):
        fp = baseline_16tile()
        assert len(fp.blocks_of_kind("router")) == 16

    def test_baseline_full_coverage(self):
        assert baseline_16tile().coverage() == pytest.approx(1.0)

    def test_e5_has_eight_cores(self):
        fp = xeon_e5_2667v4()
        assert len(fp.blocks_of_kind("core")) == 8

    def test_e5_area_about_246mm2(self):
        assert xeon_e5_2667v4().die_area == pytest.approx(mm2(246.16),
                                                          rel=0.01)

    def test_phi_has_72_cores(self):
        fp = xeon_phi_7290()
        assert len(fp.blocks_of_kind("core")) == 72

    def test_phi_larger_than_e5(self):
        assert xeon_phi_7290().die_area > xeon_e5_2667v4().die_area

    def test_get_floorplan_roundtrip(self):
        for name in floorplan_names():
            assert get_floorplan(name).name == name

    def test_get_floorplan_unknown(self):
        with pytest.raises(FloorplanError):
            get_floorplan("itanium")


class TestTransforms:
    def test_rotate_180_preserves_validity_and_area(self):
        for factory in (baseline_16tile, xeon_e5_2667v4, xeon_phi_7290):
            fp = factory()
            rot = rotate_180(fp)
            assert rot.coverage() == pytest.approx(fp.coverage())
            assert rot.block_names == fp.block_names

    def test_rotate_180_moves_cores_to_top(self):
        fp = baseline_16tile()
        rot = rotate_180(fp)
        tile = fp.outline.h / 4
        for b in rot.blocks_of_kind("core"):
            assert b.rect.y >= 3 * tile - 1e-12

    def test_rotate_180_involution_on_power_map(self):
        fp = baseline_16tile()
        power = {b.name: 1.0 for b in fp.blocks if b.kind == "core"}
        pm = fp.power_map(power, 16, 16)
        pm_rot = rotate_180(fp).power_map(power, 16, 16)
        np.testing.assert_allclose(pm_rot, pm[::-1, ::-1], atol=1e-12)

    def test_mirror_x_preserves_y(self):
        fp = baseline_16tile()
        mx = mirror_x(fp)
        for a, b in zip(fp.blocks, mx.blocks):
            assert a.rect.y == pytest.approx(b.rect.y)

    def test_mirror_y_preserves_x(self):
        fp = baseline_16tile()
        my = mirror_y(fp)
        for a, b in zip(fp.blocks, my.blocks):
            assert a.rect.x == pytest.approx(b.rect.x)

    def test_rotate_90_square_die(self):
        fp = baseline_16tile()   # square
        r90 = rotate_90(fp)
        assert r90.coverage() == pytest.approx(fp.coverage())

    def test_rotate_90_rejects_rectangular(self):
        # The paper: rectangular chips cannot be stacked after 90 deg.
        with pytest.raises(FloorplanError, match="square"):
            rotate_90(xeon_e5_2667v4())

    def test_four_90_rotations_identity(self):
        fp = baseline_16tile()
        r = fp
        for _ in range(4):
            r = rotate_90(r)
        for a, b in zip(fp.blocks, r.blocks):
            assert a.rect.x == pytest.approx(b.rect.x, abs=1e-12)
            assert a.rect.y == pytest.approx(b.rect.y, abs=1e-12)
