"""Tests for table rendering, validation records, and thermal-map stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Check, ValidationReport, format_mapping, format_series, format_table
from repro.errors import ThermalModelError
from repro.thermal.maps import MapStats, ascii_map, uniformity_index, vertical_profile


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_none_renders_as_dashes(self):
        out = format_table(["x"], [[None]])
        assert "--" in out

    def test_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23" not in out

    def test_series(self):
        out = format_series("label", [1, 2], [3.0, 4.0])
        assert out.startswith("label")

    def test_mapping(self):
        out = format_mapping("title", {"a": 1.5})
        assert "title" in out and "1.500" in out


class TestChecks:
    def test_quantitative_pass(self):
        c = Check.quantitative("x", paper=10.0, measured=10.5,
                               tolerance=1.0)
        assert c.passed

    def test_quantitative_fail(self):
        c = Check.quantitative("x", paper=10.0, measured=15.0,
                               tolerance=1.0)
        assert not c.passed
        assert "DEVIATION" in c.render()

    def test_qualitative(self):
        c = Check.qualitative("ordering", measured=1.0, passed=True,
                              note="water beats oil")
        assert c.passed
        assert "water beats oil" in c.render()

    def test_report_counts(self):
        r = ValidationReport("fig-x")
        r.add(Check.quantitative("a", 1.0, 1.0, 0.1))
        r.add(Check.quantitative("b", 1.0, 5.0, 0.1))
        assert (r.passed, r.total) == (1, 2)
        assert "1/2" in r.render()


class TestMapStats:
    def test_from_field(self):
        f = np.array([[1.0, 2.0], [3.0, 8.0]])
        s = MapStats.from_field("die0", f)
        assert s.max_c == 8.0
        assert s.min_c == 1.0
        assert s.spread_c == 7.0
        assert s.hottest_cell == (1, 1)

    def test_empty_field_rejected(self):
        with pytest.raises(ThermalModelError):
            MapStats.from_field("die0", np.zeros((0, 0)))

    def test_uniformity_flat_field(self):
        assert uniformity_index(np.full((4, 4), 55.0)) == 1.0

    def test_uniformity_spike_low(self):
        f = np.zeros((8, 8)); f[4, 4] = 100.0
        assert uniformity_index(f) < 0.1

    def test_uniformity_monotone(self):
        smooth = np.add.outer(np.arange(8.0), np.arange(8.0))
        spiky = np.zeros((8, 8)); spiky[0, 0] = 14.0
        assert uniformity_index(smooth) > uniformity_index(spiky)

    def test_vertical_profile(self):
        fields = {"die0": np.full((2, 2), 50.0),
                  "die1": np.full((2, 2), 40.0)}
        assert vertical_profile(fields) == (50.0, 40.0)

    def test_ascii_map_dimensions(self):
        f = np.random.default_rng(0).random((16, 16))
        art = ascii_map(f)
        lines = art.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 16 for line in lines)

    def test_ascii_map_extremes(self):
        f = np.zeros((4, 4)); f[0, 0] = 1.0
        art = ascii_map(f)
        assert "$" in art and "." in art
        # row 0 (bottom) is printed last
        assert "$" in art.splitlines()[-1]

    def test_ascii_map_constant_field(self):
        art = ascii_map(np.full((4, 4), 3.0))
        assert set(art.replace("\n", "")) == {"."}
