"""Tests for the campaign records, plus smoke runs of every example."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import paper
from repro.errors import ConfigurationError
from repro.prototype.experiments import (
    CAMPAIGN,
    fleet_summary,
    longest_run_days,
    memory_failures_are_environment_independent,
    runs_in,
)

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestCampaignRecords:
    def test_five_test_boards(self):
        boards = [r for r in CAMPAIGN if r.device.startswith("test-board")]
        assert len(boards) == paper.TESTBOARD_COUNT
        assert all(r.ongoing for r in boards)
        assert all(r.duration_days >= 730.0 for r in boards)

    def test_films_match_paper(self):
        films = {r.film_um for r in CAMPAIGN if r.film_um > 0}
        assert films == set(paper.FILM_WORKING_UM)

    def test_bay_record(self):
        assert longest_run_days("tokyo-bay") == paper.TOKYO_BAY_RECORD_DAYS

    def test_bay_shorter_than_tap(self):
        # "that record is shorter than the case under-tapped water".
        assert (longest_run_days("tokyo-bay")
                < longest_run_days("tap-water-tank"))

    def test_memory_failures_not_immersion_related(self):
        assert memory_failures_are_environment_independent()

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            runs_in("mariana-trench")

    def test_fleet_summary_consistent(self):
        s = fleet_summary()
        assert s["coated_devices"] >= 9
        assert s["device_days"] > 3000
        assert s["bay_record_days"] == paper.TOKYO_BAY_RECORD_DAYS

    def test_fujitsu_day7_story(self):
        run = next(r for r in CAMPAIGN if r.device == "fujitsu-tx1320m2")
        assert run.duration_days == 7.0
        assert run.failure_component == "memory_slot"
        assert "iRMC" in run.outcome


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "design_3d_stack.py",
    "datacenter_natural_water.py",
    "npb_full_system.py",
    "prototype_immersion.py",
    "dtm_throttling.py",
    "roadmap_2033.py",
])
def test_example_runs_clean(script):
    """Every shipped example must execute end to end."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
