"""Property-based tests for the analytic performance tier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfsim import AnalyticModel, SystemConfig, get_profile
from repro.perfsim.npb import NPB_ORDER

CFG = SystemConfig(n_chips=2)
MODEL = AnalyticModel(CFG)

freqs = st.floats(min_value=1.0e9, max_value=3.6e9)


class TestAnalyticProperties:
    @given(st.sampled_from(NPB_ORDER), freqs, freqs)
    @settings(max_examples=80, deadline=None)
    def test_time_monotone_in_frequency(self, name, f1, f2):
        lo, hi = sorted((f1, f2))
        if hi - lo < 1e6:
            return
        p = get_profile(name)
        assert (MODEL.execution_time_s(p, hi)
                <= MODEL.execution_time_s(p, lo) + 1e-15)

    @given(st.sampled_from(NPB_ORDER), freqs, freqs)
    @settings(max_examples=80, deadline=None)
    def test_speedup_bounded_by_frequency_ratio(self, name, f1, f2):
        lo, hi = sorted((f1, f2))
        if hi / lo < 1.01:
            return
        p = get_profile(name)
        rel = MODEL.relative_time(p, hi, lo)
        # Cannot beat ideal clock scaling, cannot be slower than the
        # reference.
        assert lo / hi - 1e-9 <= rel <= 1.0 + 1e-9

    @given(st.sampled_from(NPB_ORDER), freqs)
    @settings(max_examples=60, deadline=None)
    def test_beta_in_unit_interval(self, name, f):
        b = MODEL.breakdown(get_profile(name), f)
        assert 0.0 <= b.memory_bound_fraction < 1.0

    @given(st.sampled_from(NPB_ORDER), freqs)
    @settings(max_examples=60, deadline=None)
    def test_beta_grows_with_frequency(self, name, f):
        """Higher clock -> the fixed DRAM share of time grows."""
        p = get_profile(name)
        if p.l2_mpki == 0:
            return
        b_lo = MODEL.breakdown(p, f)
        b_hi = MODEL.breakdown(p, min(f * 1.3, 3.6e9))
        if b_hi.f_hz <= b_lo.f_hz:
            return
        assert (b_hi.memory_bound_fraction
                >= b_lo.memory_bound_fraction - 1e-12)

    @given(st.sampled_from(NPB_ORDER))
    @settings(max_examples=20, deadline=None)
    def test_imbalance_factor_at_least_one(self, name):
        b = MODEL.breakdown(get_profile(name), 2.0e9)
        assert b.imbalance_factor >= 1.0

    @given(st.integers(min_value=1, max_value=8), freqs)
    @settings(max_examples=30, deadline=None)
    def test_deeper_stacks_never_faster_per_instruction(self, n, f):
        """More tiers lengthen NoC paths: per-instruction time cannot
        improve with stack depth at fixed thread count."""
        p = get_profile("cg")
        shallow = AnalyticModel(SystemConfig(n_chips=1), threads=4)
        deep = AnalyticModel(SystemConfig(n_chips=n), threads=4)
        assert (deep.breakdown(p, f).seconds_per_instruction
                >= shallow.breakdown(p, f).seconds_per_instruction - 1e-15)
