"""Live telemetry: Prometheus exposition, SLO windows, /metrics and
/trace endpoints, ``repro top``, the CLI telemetry flusher, and the
bench regression gate.

Companion to :mod:`tests.test_trace_distributed` (the tracing half of
the observability tentpole): this file pins the *metrics* half — the
text format a Prometheus server scrapes, the rolling-window SLO
summary ``repro top`` renders, and the ``--compare`` gate CI runs
against the checked-in bench baselines.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.config import ExperimentSpec
from repro.errors import ConfigurationError
from repro.obs import (
    SloAggregator,
    get_tracer,
    lint_prometheus_text,
    prometheus_metric_name,
    to_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve import Broker, BrokerConfig

FAST = {"die_grid": 8, "package_grid": 4}


def fast_spec(**kw) -> ExperimentSpec:
    base = dict(chip="low-power-cmp", n_chips=2, cooling="water",
                package_overrides=dict(FAST), benchmarks=("ep",))
    base.update(kw)
    return ExperimentSpec(**base)


# -- Prometheus text exposition ----------------------------------------------

class TestPrometheusText:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("serve.requests_total").inc(7)
        reg.gauge("serve.queue_depth").set(3)
        h = reg.histogram("serve.wait_seconds",
                          edges=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        return reg

    def test_name_sanitization(self):
        assert prometheus_metric_name("serve.requests_total") == \
            "repro_serve_requests_total"
        assert prometheus_metric_name("a-b.c d") == "repro_a_b_c_d"

    def test_counters_and_gauges_typed(self):
        text = to_prometheus_text(self._registry().snapshot())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus_text(self._registry().snapshot())
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_serve_wait_seconds")]
        assert 'repro_serve_wait_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_serve_wait_seconds_bucket{le="1"} 3' in lines
        assert 'repro_serve_wait_seconds_bucket{le="10"} 4' in lines
        assert 'repro_serve_wait_seconds_bucket{le="+Inf"} 5' in lines
        assert "repro_serve_wait_seconds_count 5" in lines

    def test_lint_accepts_own_output(self):
        info = lint_prometheus_text(
            to_prometheus_text(self._registry().snapshot()))
        assert info["metrics"] == 3
        assert info["samples"] >= 8

    def test_lint_rejects_malformed_sample(self):
        with pytest.raises(ConfigurationError, match="malformed sample"):
            lint_prometheus_text("# TYPE a counter\na one\n")

    def test_lint_rejects_undeclared_metric(self):
        with pytest.raises(ConfigurationError, match="undeclared"):
            lint_prometheus_text("mystery 1\n")

    def test_lint_rejects_duplicate_type(self):
        with pytest.raises(ConfigurationError, match="duplicate TYPE"):
            lint_prometheus_text(
                "# TYPE a counter\na 1\n# TYPE a gauge\na 2\n")

    def test_lint_rejects_non_cumulative_buckets(self):
        doc = ('# TYPE h histogram\n'
               'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
               'h_bucket{le="+Inf"} 5\nh_sum 1.0\nh_count 5\n')
        with pytest.raises(ConfigurationError, match="not cumulative"):
            lint_prometheus_text(doc)

    def test_lint_rejects_inf_count_mismatch(self):
        doc = ('# TYPE h histogram\n'
               'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\n'
               'h_sum 1.0\nh_count 3\n')
        with pytest.raises(ConfigurationError, match="_count"):
            lint_prometheus_text(doc)

    def test_lint_rejects_missing_inf_bucket(self):
        doc = ('# TYPE h histogram\n'
               'h_bucket{le="1"} 1\nh_sum 1.0\nh_count 1\n')
        with pytest.raises(ConfigurationError, match=r"\+Inf"):
            lint_prometheus_text(doc)


# -- rolling-window SLO aggregation ------------------------------------------

class TestSloAggregator:
    def test_percentiles_over_window(self):
        now = [0.0]
        slo = SloAggregator(60.0, clock=lambda: now[0])
        for v in range(1, 101):
            slo.observe("latency", v / 100.0)
        s = slo.summary()["stages"]["latency"]
        assert s["count"] == 100
        assert s["p50"] == pytest.approx(0.50)
        assert s["p99"] == pytest.approx(0.99)
        assert s["max"] == pytest.approx(1.0)
        assert s["mean"] == pytest.approx(0.505)

    def test_old_samples_age_out(self):
        now = [0.0]
        slo = SloAggregator(10.0, clock=lambda: now[0])
        slo.observe("wait", 100.0)
        now[0] = 5.0
        slo.observe("wait", 1.0)
        now[0] = 11.0    # first sample now outside the window
        s = slo.summary()["stages"]["wait"]
        assert s["count"] == 1
        assert s["max"] == pytest.approx(1.0)

    def test_empty_window_reports_zeros(self):
        now = [0.0]
        slo = SloAggregator(10.0, clock=lambda: now[0])
        slo.observe("run", 3.0)
        now[0] = 100.0
        s = slo.summary()["stages"]["run"]
        assert s == {"count": 0, "p50": 0.0, "p99": 0.0,
                     "max": 0.0, "mean": 0.0}

    def test_event_rates_are_count_over_window(self):
        now = [0.0]
        slo = SloAggregator(20.0, clock=lambda: now[0])
        for _ in range(10):
            slo.record("shed")
        slo.record("error", n=4)
        ev = slo.summary()["events"]
        assert ev["shed"] == {"count": 10, "per_s": 0.5}
        assert ev["error"]["count"] == 4

    def test_sample_bound_caps_memory(self):
        now = [0.0]
        slo = SloAggregator(60.0, clock=lambda: now[0], max_samples=8)
        for v in range(100):
            slo.observe("latency", float(v))
        s = slo.summary()["stages"]["latency"]
        assert s["count"] == 8
        assert s["max"] == 99.0      # the newest samples are kept

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SloAggregator(0.0)
        with pytest.raises(ConfigurationError):
            SloAggregator(10.0, max_samples=0)


# -- broker SLO wiring and the live endpoints --------------------------------

@pytest.fixture()
def http_serve():
    """A live endpoint on an ephemeral port, drained at teardown."""
    from repro.serve import HttpServeClient, ServeHTTPServer
    broker = Broker(BrokerConfig(workers=2, max_queue=8,
                                 slo_window_s=30.0))
    server = ServeHTTPServer(broker, port=0)
    server.serve_in_thread()
    try:
        yield broker, server, HttpServeClient(server.url)
    finally:
        server.shutdown()
        server.server_close()
        broker.shutdown(drain=True)


class TestServeTelemetry:
    def test_config_validates_slo_window(self):
        with pytest.raises(ConfigurationError):
            BrokerConfig(slo_window_s=0.0)

    def test_stats_carries_slo_and_uptime(self, http_serve):
        _, _, client = http_serve
        ack = client.submit(fast_spec().to_dict())
        client.result(ack["job_id"], timeout_s=120)
        stats = client.stats()
        assert stats["uptime_s"] >= 0.0
        slo = stats["slo"]
        assert slo["window_s"] == 30.0
        for stage in ("wait", "run", "latency"):
            assert slo["stages"][stage]["count"] >= 1, stage
        assert slo["events"]["request"]["count"] >= 1
        assert slo["events"]["completed"]["count"] >= 1

    def test_metrics_endpoint_serves_lintable_prometheus(self,
                                                         http_serve):
        _, server, client = http_serve
        ack = client.submit(fast_spec(n_chips=3).to_dict())
        client.result(ack["job_id"], timeout_s=120)
        text = client.metrics_text()
        info = lint_prometheus_text(text)
        assert info["samples"] > 0
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_slo_latency_p99" in text
        assert 'le="+Inf"' in text
        # the raw endpoint advertises the exposition content type
        req = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")

    def test_trace_endpoint_toggles_and_serves_spans(self, http_serve):
        _, _, client = http_serve
        tracer = get_tracer()
        assert not tracer.enabled
        try:
            assert client.set_tracing(True) == {"tracing": True}
            ack = client.submit(fast_spec(n_chips=4).to_dict())
            client.result(ack["job_id"], timeout_s=120)
            doc = client.trace()
            names = {e["name"] for e in doc["traceEvents"]}
            assert "serve.request" in names
            assert "broker.dispatch" in names
            assert client.set_tracing(False) == {"tracing": False}
        finally:
            tracer.disable()
            tracer.reset()

    def test_top_once_renders_a_frame(self, http_serve, capsys):
        from repro import cli
        _, server, client = http_serve
        ack = client.submit(fast_spec(n_chips=5).to_dict())
        client.result(ack["job_id"], timeout_s=120)
        rc = cli.main(["top", "--once", "--url", server.url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro top" in out
        assert "latency" in out
        assert "queued" in out

    def test_top_reports_unreachable_server(self, capsys):
        from repro import cli
        rc = cli.main(["top", "--once",
                       "--url", "http://127.0.0.1:1"])
        assert rc == 1
        assert "no server" in capsys.readouterr().err


# -- the CLI telemetry flusher -----------------------------------------------

class TestTelemetryFlusher:
    def test_flush_is_idempotent(self, tmp_path):
        from repro.cli import _TelemetryFlusher
        from repro.obs import get_registry
        out = tmp_path / "metrics.json"
        flusher = _TelemetryFlusher(None, str(out))
        flusher()
        first = out.read_text()
        get_registry().counter("test_telemetry.after_flush").inc()
        flusher()       # second call must not rewrite
        assert out.read_text() == first
        assert "test_telemetry.after_flush" not in first

    def test_interrupt_still_writes_telemetry(self, tmp_path,
                                              monkeypatch, capsys):
        from repro import cli

        def boom():
            raise KeyboardInterrupt
        # _cmd_pue resolves pue_comparison at call time, so patching
        # the source module simulates a Ctrl-C mid-command.
        import repro.cooling
        monkeypatch.setattr(repro.cooling, "pue_comparison", boom)
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        rc = cli.main(["pue", "--metrics-out", str(metrics),
                       "--trace-out", str(trace)])
        assert rc == 130
        assert "counters" in json.loads(metrics.read_text())
        assert "traceEvents" in json.loads(trace.read_text())

    def test_normal_run_writes_both_outputs(self, tmp_path, capsys):
        from repro import cli
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        rc = cli.main(["pue", "--metrics-out", str(metrics),
                       "--trace-out", str(trace)])
        assert rc == 0
        assert json.loads(metrics.read_text())["counters"]
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert any(r["name"] == "cli.pue" for r in records)


# -- the bench regression gate -----------------------------------------------

def _load_bench_module():
    path = Path(__file__).resolve().parent.parent / "scripts" \
        / "bench_to_json.py"
    spec = importlib.util.spec_from_file_location("bench_to_json", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBenchCompare:
    @pytest.fixture(scope="class")
    def b2j(self):
        return _load_bench_module()

    def test_flatten_covers_every_bench_shape(self, b2j):
        assert b2j._flatten_timings({
            "bench": "parallel_campaign",
            "grids": {"fig07": {"seconds": {"serial_seed": 2.0,
                                            "workers_2": 1.0}}},
        }) == {"grids.fig07.seconds.serial_seed": 2.0,
               "grids.fig07.seconds.workers_2": 1.0}
        assert b2j._flatten_timings({
            "bench": "serve", "wall_s": 1.5,
            "latency_s": {"p50": 0.1, "p99": 0.4},
        }) == {"wall_s": 1.5, "latency_s.p50": 0.1,
               "latency_s.p99": 0.4}
        assert b2j._flatten_timings({
            "bench": "supervisor",
            "seconds": {"bare_executor": 1.0, "supervised": 1.04},
        }) == {"seconds.bare_executor": 1.0,
               "seconds.supervised": 1.04}

    def test_within_threshold_passes(self, b2j):
        base = {"bench": "serve", "wall_s": 1.0,
                "latency_s": {"p99": 0.1}}
        cur = {"bench": "serve", "wall_s": 1.2,
               "latency_s": {"p99": 0.12}}
        rc, rows = b2j.compare_to_baseline(cur, base, threshold=0.25)
        assert rc == 0
        assert all(not r["regressed"] for r in rows)

    def test_regression_fails_and_names_the_metric(self, b2j):
        base = {"bench": "serve", "wall_s": 1.0,
                "latency_s": {"p99": 0.1}}
        cur = {"bench": "serve", "wall_s": 2.0,
               "latency_s": {"p99": 0.1}}
        rc, rows = b2j.compare_to_baseline(cur, base, threshold=0.25)
        assert rc == 1
        bad = [r for r in rows if r["regressed"]]
        assert [r["metric"] for r in bad] == ["wall_s"]
        assert bad[0]["ratio"] == pytest.approx(2.0)

    def test_metrics_missing_from_either_side_are_skipped(self, b2j):
        base = {"bench": "serve", "wall_s": 1.0,
                "latency_s": {"p50": 0.1}}
        cur = {"bench": "serve", "wall_s": 1.0,
               "latency_s": {"p99": 9.9}}
        rc, rows = b2j.compare_to_baseline(cur, base, threshold=0.25)
        assert rc == 0
        assert [r["metric"] for r in rows] == ["wall_s"]

    def test_run_compare_report_only_never_fails(self, b2j, tmp_path,
                                                 capsys):
        out = tmp_path / "cur.json"
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"bench": "serve", "wall_s": 1.0}))
        out.write_text(json.dumps({"bench": "serve", "wall_s": 10.0}))

        class Args:
            pass
        args = Args()
        args.out = str(out)
        args.compare = str(baseline)
        args.threshold = 0.25
        args.report_only = True
        assert b2j._run_compare(args) == 0
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "report-only" in captured.err
        args.report_only = False
        assert b2j._run_compare(args) == 1

    def test_mismatched_bench_kinds_do_not_compare(self, b2j, tmp_path,
                                                   capsys):
        out = tmp_path / "cur.json"
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"bench": "supervisor",
                                        "seconds": {"supervised": 1.0}}))
        out.write_text(json.dumps({"bench": "serve", "wall_s": 1.0}))

        class Args:
            pass
        args = Args()
        args.out = str(out)
        args.compare = str(baseline)
        args.threshold = 0.25
        args.report_only = False
        assert b2j._run_compare(args) == 1
        args.report_only = True
        assert b2j._run_compare(args) == 0
        assert "nothing comparable" in capsys.readouterr().err


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-v"]))
