"""Tests for the MOESI directory model, core model, and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.perfsim.coherence import DirectoryModel, TransactionKind
from repro.perfsim.cpu import InOrderCore, mix_base_cpi
from repro.perfsim.noc.topology import NodeId
from repro.perfsim.npb import NPB_ORDER, NPB_PROFILES, get_profile
from repro.perfsim.workload import InstructionMix, WorkloadProfile
from repro.units import ghz


class TestInstructionMix:
    def test_must_sum_to_one(self):
        with pytest.raises(SimulationError):
            InstructionMix(0.5, 0.5, 0.5, 0.0, 0.0)

    def test_memory_fraction(self):
        m = InstructionMix(0.3, 0.3, 0.25, 0.10, 0.05)
        assert m.memory_fraction == pytest.approx(0.35)

    def test_base_cpi_weighted(self):
        m = InstructionMix(1.0, 0.0, 0.0, 0.0, 0.0)
        assert mix_base_cpi(m) == pytest.approx(1.0)


class TestWorkloadProfiles:
    def test_all_nine_programs(self):
        assert len(NPB_ORDER) == 9
        assert set(NPB_ORDER) == set(NPB_PROFILES)

    def test_l2_subset_of_l1(self):
        for p in NPB_PROFILES.values():
            assert p.l2_mpki <= p.l1_mpki

    def test_ep_is_compute_bound(self):
        ep = get_profile("ep")
        others = [p.l2_mpki for n, p in NPB_PROFILES.items() if n != "ep"]
        assert ep.l2_mpki < min(others)

    def test_is_and_cg_most_memory_bound(self):
        ranked = sorted(NPB_PROFILES.values(), key=lambda p: -p.l2_mpki)
        assert {ranked[0].name, ranked[1].name} == {"is", "cg"}

    def test_invalid_profile_rejected(self):
        with pytest.raises(SimulationError, match="subset"):
            WorkloadProfile(
                name="bad",
                mix=get_profile("ep").mix,
                base_cpi=1.0, l1_mpki=1.0, l2_mpki=2.0,
                sharing_fraction=0.1, barrier_interval_kinstr=10.0,
                imbalance_cv=0.0)

    def test_unknown_profile(self):
        with pytest.raises(SimulationError):
            get_profile("linpack")

    def test_memory_stall_helper_monotone_in_dram(self):
        p = get_profile("cg")
        slow = p.memory_stall_seconds_per_instr(3e-9, 200e-9, 15e-9, 25e-9)
        fast = p.memory_stall_seconds_per_instr(3e-9, 50e-9, 15e-9, 25e-9)
        assert slow > fast


class TestDirectoryModel:
    def make(self, seed=0):
        return DirectoryModel(l1_mpki=40.0, l2_mpki=10.0,
                              sharing_fraction=0.3, seed=seed)

    def test_kind_distribution(self):
        d = self.make()
        kinds = [d.sample_kind() for _ in range(4000)]
        frac_miss = sum(k is TransactionKind.L2_MISS for k in kinds) / 4000
        assert frac_miss == pytest.approx(0.25, abs=0.03)

    def test_reproducible(self):
        a = [self.make(seed=5).sample_kind() for _ in range(50)]
        b = [self.make(seed=5).sample_kind() for _ in range(50)]
        assert a == b

    def test_owner_excludes_requester(self):
        d = self.make()
        cands = (NodeId(0, 0, 0), NodeId(0, 1, 0), NodeId(0, 2, 0))
        for _ in range(50):
            owner = d.sample_owner(cands, exclude=cands[0])
            assert owner != cands[0]

    def test_l2_hit_legs(self):
        d = self.make()
        txn = d.build_transaction(TransactionKind.L2_HIT, NodeId(0, 0, 0),
                                  NodeId(0, 2, 2), None, NodeId(0, 3, 3))
        assert len(txn.legs) == 2
        assert not txn.needs_dram
        assert txn.legs[0].message_class == "request"
        assert txn.legs[1].is_data

    def test_forward_legs(self):
        d = self.make()
        txn = d.build_transaction(TransactionKind.L2_HIT_FORWARD,
                                  NodeId(0, 0, 0), NodeId(0, 2, 2),
                                  NodeId(0, 1, 0), NodeId(0, 3, 3))
        assert len(txn.legs) == 3
        assert txn.legs[1].message_class == "forward"
        assert txn.legs[2].src == NodeId(0, 1, 0)
        assert txn.legs[2].dst == NodeId(0, 0, 0)

    def test_forward_requires_owner(self):
        d = self.make()
        with pytest.raises(SimulationError, match="owner"):
            d.build_transaction(TransactionKind.L2_HIT_FORWARD,
                                NodeId(0, 0, 0), NodeId(0, 2, 2), None,
                                NodeId(0, 3, 3))

    def test_l2_miss_goes_through_memory(self):
        d = self.make()
        txn = d.build_transaction(TransactionKind.L2_MISS, NodeId(0, 0, 0),
                                  NodeId(0, 2, 2), None, NodeId(0, 3, 3))
        assert txn.needs_dram
        assert txn.legs[1].dst == NodeId(0, 3, 3)
        assert txn.legs[-1].dst == NodeId(0, 0, 0)

    def test_invalid_mpki_rejected(self):
        with pytest.raises(SimulationError):
            DirectoryModel(l1_mpki=5.0, l2_mpki=10.0, sharing_fraction=0.1)


class TestInOrderCore:
    def test_segment_respects_budget(self):
        core = InOrderCore(0, get_profile("cg"), ghz(2.0), seed=1)
        n, t, miss = core.next_segment(100)
        assert 1 <= n <= 100
        assert t > 0

    def test_compute_time_scales_with_frequency(self):
        slow = InOrderCore(0, get_profile("ep"), ghz(1.0), seed=2)
        fast = InOrderCore(0, get_profile("ep"), ghz(2.0), seed=2)
        n1, t1, _ = slow.next_segment(10_000)
        n2, t2, _ = fast.next_segment(10_000)
        assert n1 == n2   # same seed, same stream
        assert t1 == pytest.approx(2 * t2)

    def test_ep_misses_far_apart(self):
        # EP: 2 MPKI -> mean gap ~500 instructions between misses.
        core = InOrderCore(0, get_profile("ep"), ghz(2.0), seed=3)
        lengths = [core.next_segment(1_000_000)[0] for _ in range(200)]
        assert np.mean(lengths) > 200

    def test_cg_misses_often(self):
        core = InOrderCore(0, get_profile("cg"), ghz(2.0), seed=3)
        segments = [core.next_segment(10_000)[2] for _ in range(20)]
        assert any(segments)

    def test_stall_accounting(self):
        core = InOrderCore(0, get_profile("cg"), ghz(2.0))
        core.record_stall(1e-6)
        assert core.state.stall_s == pytest.approx(1e-6)

    def test_barrier_work_mean(self):
        core = InOrderCore(0, get_profile("mg"), ghz(2.0), seed=4)
        draws = [core.barrier_work(20.0, 0.05) for _ in range(300)]
        assert np.mean(draws) == pytest.approx(20_000, rel=0.05)

    def test_barrier_work_no_cv_deterministic(self):
        core = InOrderCore(0, get_profile("mg"), ghz(2.0))
        assert core.barrier_work(20.0, 0.0) == 20_000

    def test_zero_budget_rejected(self):
        core = InOrderCore(0, get_profile("cg"), ghz(2.0))
        with pytest.raises(SimulationError):
            core.next_segment(0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(SimulationError):
            InOrderCore(0, get_profile("cg"), 0.0)
