"""Tests for the layout optimizer and tank-packing extensions."""

from __future__ import annotations

import pytest

from repro.cooling import TankConfig, board_junction_c, max_boards, packing_study
from repro.errors import ConfigurationError
from repro.floorplan import (
    TRANSFORMS,
    StackLayoutOptimizer,
    apply_transform,
    baseline_16tile,
    optimize_stack_layout,
)
from repro.power import get_chip
from repro.units import ghz


class TestApplyTransform:
    def test_identity_returns_same(self):
        fp = baseline_16tile()
        assert apply_transform(fp, "identity") is fp

    def test_all_transforms_valid(self):
        fp = baseline_16tile()
        for t in TRANSFORMS:
            out = apply_transform(fp, t)
            assert out.coverage() == pytest.approx(fp.coverage())

    def test_unknown_transform_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_transform(baseline_16tile(), "rot45")


class TestStackLayoutOptimizer:
    @pytest.fixture(scope="class")
    def opt(self, fast_params):
        return StackLayoutOptimizer(get_chip("high-frequency-cmp"), 4,
                                    "water", ghz(3.6),
                                    params=fast_params, seed=3)

    def test_peak_for_schedule_length_checked(self, opt):
        with pytest.raises(ConfigurationError):
            opt.peak_for(("identity",))

    def test_flip_beats_baseline(self, opt):
        base = opt.peak_for(("identity",) * 4)
        flip = opt.peak_for(("identity", "rot180", "identity", "rot180"))
        assert flip < base

    def test_anneal_never_worse_than_flip_or_baseline(self, fast_params):
        res = StackLayoutOptimizer(
            get_chip("high-frequency-cmp"), 4, "water", ghz(3.6),
            params=fast_params, seed=5).anneal(iterations=120)
        assert res.peak_c <= res.flip_c + 1e-9
        assert res.peak_c <= res.baseline_c + 1e-9
        assert res.gain_vs_baseline_c >= 0
        assert res.evaluations >= 120

    def test_anneal_reproducible(self, fast_params):
        def run(seed):
            return StackLayoutOptimizer(
                get_chip("high-frequency-cmp"), 3, "water", ghz(3.0),
                params=fast_params, seed=seed).anneal(iterations=60)
        a, b = run(7), run(7)
        assert a.schedule == b.schedule
        assert a.peak_c == b.peak_c

    def test_wrapper(self):
        res = optimize_stack_layout("high-frequency-cmp", 2, "water",
                                    ghz(3.6), iterations=40, seed=1)
        assert len(res.schedule) == 2

    def test_single_die_rotation_useless(self, fast_params):
        """With one die there is no stacking interaction; all transforms
        give (nearly) the same peak because the package is symmetric."""
        opt = StackLayoutOptimizer(get_chip("high-frequency-cmp"), 1,
                                   "water", ghz(3.6),
                                   params=fast_params, seed=0)
        peaks = [opt.peak_for((t,)) for t in TRANSFORMS]
        assert max(peaks) - min(peaks) < 0.5

    def test_invalid_inputs(self, fast_params):
        with pytest.raises(ConfigurationError):
            StackLayoutOptimizer(get_chip("low-power-cmp"), 0, "water",
                                 ghz(2.0), params=fast_params)
        opt = StackLayoutOptimizer(get_chip("low-power-cmp"), 2, "water",
                                   ghz(2.0), params=fast_params)
        with pytest.raises(ConfigurationError):
            opt.anneal(iterations=0)


class TestTankPacking:
    def test_bulk_temperature_rises_with_boards(self):
        tank = TankConfig()
        assert tank.bulk_water_temp_c(0) == pytest.approx(25.0)
        assert (tank.bulk_water_temp_c(10)
                < tank.bulk_water_temp_c(100))

    def test_energy_balance_value(self):
        tank = TankConfig(exchange_flow_m3_s=1e-3, board_power_w=250.0)
        # 100 boards x 250 W = 25 kW into ~4.18 MW/K per m3/s * 1e-3.
        expected = 25.0 + 25_000.0 / (998.0 * 4184.0 * 1e-3)
        assert tank.bulk_water_temp_c(100) == pytest.approx(expected)

    def test_crowding_below_min_pitch(self):
        wide = TankConfig(board_pitch_m=0.05)
        tight = TankConfig(board_pitch_m=0.015)
        assert wide.crowding_factor() == 1.0
        assert tight.crowding_factor() == pytest.approx(0.5)
        assert tight.effective_h_w_m2k() < wide.effective_h_w_m2k()

    def test_junction_monotone_in_boards(self):
        tank = TankConfig()
        temps = [board_junction_c(tank, n) for n in (1, 50, 500)]
        assert temps[0] < temps[1] < temps[2]

    def test_max_boards_consistency(self):
        tank = TankConfig()
        n = max_boards(tank, threshold_c=80.0)
        assert n >= 1
        assert board_junction_c(tank, n) <= 80.0
        assert board_junction_c(tank, n + 1) > 80.0

    def test_more_flow_packs_more(self):
        study = packing_study((1e-4, 1e-3, 1e-2))
        counts = list(study.values())
        assert counts[0] < counts[1] < counts[2]

    def test_zero_when_single_board_too_hot(self):
        tank = TankConfig(board_power_w=5000.0)
        assert max_boards(tank, threshold_c=80.0) == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TankConfig(exchange_flow_m3_s=0.0)
        with pytest.raises(ConfigurationError):
            TankConfig(board_power_w=-1.0)
        with pytest.raises(ConfigurationError):
            TankConfig().bulk_water_temp_c(-1)
